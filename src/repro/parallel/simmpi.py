"""Deterministic discrete-event simulated MPI.

The paper's Fig. 8 runs PFASST with ``P_T`` MPI ranks along the time axis on
a Blue Gene/P.  Here each rank is a Python *generator* that yields
communication operations; a scheduler matches sends to receives, advances
per-rank **virtual clocks**, and thereby measures the parallel wall-clock
the same program would need on a message-passing machine:

* compute time   — real ``perf_counter`` time a rank spends between yields,
  scaled by ``compute_scale`` (so a Python tree walk can stand in for a
  Fortran one), plus explicit ``work(seconds)`` charges for modelled costs;
* message time   — LogP-style ``latency + bytes/bandwidth`` per message,
  charged between the sender's send instant and the receiver's completion.

Sends are *eager* (buffered): the sender only pays an overhead and
continues, mirroring MPI_Isend-based pipelined PFASST where fine-level
sends overlap with computation.  Receives block until the matching message
has arrived in virtual time.

The scheduler is deterministic: message matching is FIFO per
``(source, dest, tag)`` channel and independent of the interleaving chosen,
so numerical results never depend on the (virtual) timing model.

Fault injection (:mod:`repro.parallel.faults`) is opt-in per run: pass a
``fault_plan`` and the scheduler throws :class:`~repro.parallel.faults.
RankFailure` into crashing rank programs, drops/duplicates/delays/corrupts
matching messages, and records everything in a
:class:`~repro.parallel.faults.ResilienceReport` (``scheduler.resilience``).
Receives accept ``timeout=`` / ``retries=`` for link-layer recovery: a
lost or corrupted message is retransmitted from a pristine shadow copy
(bounded by ``retries``), and a receive that can never be satisfied raises
:class:`~repro.parallel.faults.RecvTimeout` into the program instead of
deadlocking.  Timeouts are *lazy*: they only fire when the scheduler has
proven that no further progress is possible without them, so a timeout
never fires spuriously, and the fault-free path with no plan installed is
byte-identical to the plain scheduler.

Example
-------
>>> def program(comm):
...     if comm.rank == 0:
...         yield comm.send(1, "token", 42)
...     else:
...         value = yield comm.recv(0, "token")
...         return value
>>> sched = Scheduler(2)
>>> sched.run(program)
[None, 42]
"""

from __future__ import annotations

import pickle
import time
import warnings
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Hashable, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.parallel import tags as _tags
from repro.parallel.executor import (
    Compute,
    ComputeTask,
    DispatchResult,
    ExecutionBackend,
    PayloadPicklingError,
)
from repro.parallel.faults import (
    CorruptionError,
    FaultEvent,
    FaultPlan,
    FaultRuntime,
    RankFailure,
    RecvTimeout,
    ResilienceReport,
    corrupt_payload,
    payload_checksum,
)

__all__ = [
    "CommCostModel",
    "Send",
    "Recv",
    "Work",
    "VirtualComm",
    "SubComm",
    "EpochComm",
    "Scheduler",
    "DeadlockError",
    "OrphanMessageWarning",
    "payload_bytes",
]


class OrphanMessageWarning(UserWarning):
    """Messages were sent but never received by program exit."""


class DeadlockError(RuntimeError):
    """All unfinished ranks are blocked on receives that can never arrive."""


@dataclass(frozen=True)
class CommCostModel:
    """LogP-flavoured communication cost parameters (seconds, bytes/s).

    Defaults are Blue Gene/P-like interconnect figures (MPI latency a few
    microseconds, ~375 MB/s per link); they only affect virtual clocks,
    never numerics.
    """

    latency: float = 3.5e-6
    bandwidth: float = 375e6
    send_overhead: float = 1.0e-6
    #: multiplier applied to measured real compute time
    compute_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.send_overhead < 0:
            raise ValueError(
                f"send_overhead must be >= 0, got {self.send_overhead}"
            )
        if self.compute_scale <= 0:
            raise ValueError(
                f"compute_scale must be > 0, got {self.compute_scale}"
            )

    def transfer_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth


def payload_bytes(payload: Any, strict: bool = False) -> int:
    """Estimate the on-wire size of a message payload.

    With ``strict=True`` (the scheduler sets it when a process execution
    backend is attached) an unpicklable payload raises
    :class:`~repro.parallel.executor.PayloadPicklingError` instead of
    falling back to the advisory 64-byte guess — under real multi-process
    execution such a payload is a correctness bug, not a cost-model
    inaccuracy.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if payload is None:
        return 8
    if isinstance(payload, (int, float, bool, np.floating, np.integer)):
        return 8
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:
        if strict:
            raise PayloadPicklingError(
                type(payload).__name__, cause=exc
            ) from exc
        warnings.warn(
            f"payload of type {type(payload).__name__!r} is unpicklable; "
            "assuming 64 bytes on the wire — communication cost-model "
            "figures for this message are a guess",
            UserWarning,
            stacklevel=2,
        )
        return 64


# -- operations a rank program may yield -----------------------------------
@dataclass(frozen=True)
class Send:
    dest: int
    tag: Hashable
    payload: Any


@dataclass(frozen=True)
class Recv:
    source: int
    tag: Hashable
    #: virtual-second budget after which the receive gives up (lazy: only
    #: expires when the scheduler has proven no progress is possible)
    timeout: Optional[float] = None
    #: bounded retransmit attempts for lost/corrupted messages
    retries: int = 0
    #: extra virtual seconds charged per retransmit (backoff model)
    backoff: float = 0.0


@dataclass(frozen=True)
class Work:
    """Charge ``seconds`` of *modelled* compute time to the rank's clock."""

    seconds: float


@dataclass(frozen=True)
class Annotate:
    """Record a labelled instant on the rank's virtual timeline.

    Used to reconstruct schedule diagrams (paper Fig. 6): a rank program
    yields ``comm.annotate("fine_sweep")`` / ``comm.annotate("end")``
    around its phases and the scheduler stores ``TraceEvent`` entries.
    ``begin:<label>`` / ``end:<label>`` pairs are additionally folded
    into virtual-time spans by an attached :class:`repro.obs.Tracer`.
    """

    label: str
    #: optional structured payload forwarded to the tracer (residuals, ...)
    data: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class TraceEvent:
    """One annotated instant: ``(rank, label, virtual_time)``."""

    rank: int
    label: str
    time: float
    data: Optional[Dict[str, Any]] = None


@dataclass
class _Message:
    payload: Any
    arrival: float
    #: pristine-payload checksum, set only on fault-injected channels
    checksum: Optional[int] = None
    #: sender's virtual clock at the send instant (orphan diagnostics)
    sent: float = 0.0
    #: sender's send stamp (a globally unique sequence number), set only
    #: under ``certify``; the full vector clock is reconstructed offline
    #: from the event log
    vc: Optional[int] = None


class VirtualComm:
    """Per-rank handle: op constructors plus rank/size/clock introspection.

    Rank programs *yield* the operations::

        yield comm.send(dest, tag, payload)
        value = yield comm.recv(source, tag)
        yield comm.work(0.01)
    """

    def __init__(self, rank: int, size: int, scheduler: "Scheduler") -> None:
        self.rank = rank
        self.size = size
        self._scheduler = scheduler
        #: collective-call counter giving each ``split`` a distinct comm id;
        #: consistent across ranks because splits are collective (every
        #: member calls them in the same order, like MPI communicators)
        self._split_seq = 0

    def send(self, dest: int, tag: Hashable, payload: Any) -> Send:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range 0..{self.size - 1}")
        if dest == self.rank:
            raise ValueError("self-sends are not supported")
        return Send(dest, tag, payload)

    def recv(
        self,
        source: int,
        tag: Hashable,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.0,
    ) -> Recv:
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range 0..{self.size - 1}")
        if source == self.rank:
            raise ValueError("self-receives are not supported")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0 when given, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        return Recv(source, tag, timeout=timeout, retries=retries,
                    backoff=backoff)

    def work(self, seconds: float) -> Work:
        if seconds < 0:
            raise ValueError(f"work seconds must be >= 0, got {seconds}")
        return Work(seconds)

    def annotate(self, label: str,
                 data: Optional[Dict[str, Any]] = None) -> Annotate:
        return Annotate(label, data=data)

    @property
    def clock(self) -> float:
        """Current virtual time of this rank (seconds)."""
        return self._scheduler.clocks[self.rank]

    @property
    def world_rank(self) -> int:
        """This rank's identity in the scheduler world (= ``rank`` here)."""
        return self.rank

    @property
    def metrics(self) -> MetricsRegistry:
        """The scheduler's per-run metrics registry (for rank programs)."""
        return self._scheduler.metrics

    def translate(self, rank: int) -> int:
        """Map a rank of *this* communicator to its scheduler-world rank."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range 0..{self.size - 1}")
        return rank

    def split(
        self, color: Optional[Hashable], key: Optional[int] = None
    ) -> Generator[Any, Any, Optional["SubComm"]]:
        """Collective ``MPI_Comm_split``: partition this comm by ``color``.

        Every rank of the communicator must call ``split`` (it is a
        collective built from point-to-point messages: a flat gather of
        ``(rank, color, key)`` to rank 0 followed by a broadcast of the
        grouping).  Ranks sharing a ``color`` form one :class:`SubComm`,
        ordered by ``(key, rank)`` — ``key`` defaults to the caller's
        rank, so omitting it preserves parent order.  Passing
        ``color=None`` opts out (returns ``None``), mirroring
        ``MPI_UNDEFINED``.

        Works recursively: splitting a :class:`SubComm` wraps tags one
        level deeper, so a P_T x P_S world can be split into per-row
        space comms and per-column time comms (paper Fig. 2) from one
        scheduler world.  Use with ``yield from`` inside a rank program::

            space = yield from world.split(color=t_index, key=s_index)
        """
        seq = self._split_seq
        self._split_seq += 1
        tag = (_tags.SPLIT, seq)
        entry = (self.rank, color, self.rank if key is None else key)
        if self.rank == 0:
            entries = [entry]
            for src in range(1, self.size):
                entries.append((yield self.recv(src, (tag, src))))
            groups: Dict[Hashable, List[Tuple[int, int]]] = {}
            for r, c, k in entries:
                if c is not None:
                    groups.setdefault(c, []).append((k, r))
            table = {c: [r for _, r in sorted(pairs)]
                     for c, pairs in groups.items()}
            for dest in range(1, self.size):
                yield self.send(dest, (tag, "b", dest), table)
        else:
            yield self.send(0, (tag, self.rank), entry)
            table = yield self.recv(0, (tag, "b", self.rank))
        if color is None:
            return None
        members = table[color]
        return SubComm(self, members, members.index(self.rank),
                       (_tags.SUBCOMM, seq, color))


class SubComm(VirtualComm):
    """A sub-communicator produced by :meth:`VirtualComm.split`.

    Pure tag-translation layer: ops are constructed by the parent comm
    with ranks mapped through the member list and tags wrapped as
    ``(comm_id, tag)``, so traffic on different sub-communicators can
    never collide even when they share scheduler-world rank pairs.  The
    scheduler itself is untouched — a :class:`SubComm` is just a view.
    """

    def __init__(self, parent: VirtualComm, members: List[int], rank: int,
                 comm_id: Hashable) -> None:
        super().__init__(rank, len(members), parent._scheduler)
        self.parent = parent
        self.members = list(members)
        self._comm_id = comm_id

    def send(self, dest: int, tag: Hashable, payload: Any) -> Send:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range 0..{self.size - 1}")
        if dest == self.rank:
            raise ValueError("self-sends are not supported")
        return self.parent.send(
            self.members[dest], (self._comm_id, tag), payload
        )

    def recv(
        self,
        source: int,
        tag: Hashable,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.0,
    ) -> Recv:
        if not 0 <= source < self.size:
            raise ValueError(
                f"source {source} out of range 0..{self.size - 1}"
            )
        if source == self.rank:
            raise ValueError("self-receives are not supported")
        return self.parent.recv(
            self.members[source], (self._comm_id, tag),
            timeout=timeout, retries=retries, backoff=backoff,
        )

    @property
    def clock(self) -> float:
        """Virtual time of the underlying world rank (not the sub-rank)."""
        return self.parent.clock

    @property
    def world_rank(self) -> int:
        return self.parent.world_rank

    def translate(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range 0..{self.size - 1}")
        return self.parent.translate(self.members[rank])


class EpochComm(VirtualComm):
    """An attempt-stamped view of a communicator for grid recovery.

    Pure tag-translation layer like :class:`SubComm`: every tag becomes
    ``(("ftepoch", epoch), tag)`` on the parent.  The PFASST controller
    bumps :attr:`epoch` whenever a recovery attempt abandons in-flight
    collective traffic: partial messages from the aborted attempt stay
    on the old epoch's channels and are orphaned instead of being
    consumed FIFO-style by the redo (space collectives such as the
    branch-exchange ring carry no attempt component of their own).

    ``recv`` additionally injects a default ``timeout``/``retries``/
    ``backoff`` when the call site passes none, so collectives written
    for the fault-free path become abortable when a row peer dies.
    """

    def __init__(
        self,
        parent: VirtualComm,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.0,
    ) -> None:
        super().__init__(parent.rank, parent.size, parent._scheduler)
        self.parent = parent
        #: monotonically increasing; never reset (inner tags may not
        #: carry a block component, so reuse across blocks would collide)
        self.epoch = 0
        self._default_timeout = timeout
        self._default_retries = retries
        self._default_backoff = backoff

    def send(self, dest: int, tag: Hashable, payload: Any) -> Send:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range 0..{self.size - 1}")
        if dest == self.rank:
            raise ValueError("self-sends are not supported")
        return self.parent.send(
            dest, ((_tags.FTEPOCH, self.epoch), tag), payload
        )

    def recv(
        self,
        source: int,
        tag: Hashable,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.0,
    ) -> Recv:
        if not 0 <= source < self.size:
            raise ValueError(
                f"source {source} out of range 0..{self.size - 1}"
            )
        if source == self.rank:
            raise ValueError("self-receives are not supported")
        if timeout is None and self._default_timeout is not None:
            timeout = self._default_timeout
            if retries == 0:
                retries = self._default_retries
            if backoff == 0.0:
                backoff = self._default_backoff
        return self.parent.recv(
            source, ((_tags.FTEPOCH, self.epoch), tag),
            timeout=timeout, retries=retries, backoff=backoff,
        )

    @property
    def clock(self) -> float:
        return self.parent.clock

    @property
    def world_rank(self) -> int:
        return self.parent.world_rank

    def translate(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range 0..{self.size - 1}")
        return self.parent.translate(rank)


RankProgram = Callable[[VirtualComm], Generator[Any, Any, Any]]


@dataclass
class _RankState:
    gen: Generator[Any, Any, Any]
    comm: VirtualComm
    blocked_on: Optional[Tuple[int, Hashable]] = None
    finished: bool = False
    result: Any = None
    send_value: Any = None  # value fed into the generator on next resume
    recv_op: Optional[Recv] = None  # full op while blocked (timeout/retries)
    retries_left: int = 0
    #: task awaiting the next dispatch barrier (non-inline executor)
    compute_pending: Optional[ComputeTask] = None
    #: exception from a dispatched task, thrown into the generator on resume
    pending_throw: Optional[BaseException] = None


class Scheduler:
    """Run ``n_ranks`` rank programs to completion under virtual time.

    Parameters
    ----------
    n_ranks :
        Number of simulated ranks.
    cost_model :
        Communication/compute cost parameters.
    measure_compute :
        When True (default), real wall time between yields is added to the
        rank's virtual clock (scaled by ``compute_scale``).  Disable for
        pure-numerics runs where timing is irrelevant.
    verify :
        Replay mode (a practical race detector): after the primary run,
        re-execute the whole program under the *reversed* rank-service
        order and require byte-identical results
        (:func:`repro.analysis.commcheck.freeze`).  Schedule-dependent
        numerics — shared mutable state across rank generators, matching
        that leaks the interleaving — raise
        :class:`repro.analysis.commcheck.VerificationError`.  With
        ``measure_compute=False`` the virtual clocks must also agree.
        The program runs twice, so rank programs must tolerate
        re-execution from scratch.
    service_order :
        Order in which runnable ranks are advanced per scheduling round:
        ``"ascending"`` (default) or ``"descending"``.  Deterministic
        numerics must not depend on it; ``verify=True`` checks exactly
        that.
    warn_orphans :
        Emit an :class:`OrphanMessageWarning` when messages remain
        undelivered after every rank finished (see
        :func:`repro.analysis.commcheck.find_orphans`); the structured
        report is kept in :attr:`orphans` either way.
    fault_plan :
        Optional :class:`~repro.parallel.faults.FaultPlan`.  When set,
        crash rules throw :class:`~repro.parallel.faults.RankFailure`
        into the matching rank programs, message rules drop / duplicate /
        delay / corrupt matching sends, and :attr:`resilience` records
        every injection and recovery action.  When ``None`` (default)
        the fault hooks are never entered and results and virtual clocks
        are byte-identical to the plain scheduler.
    tracer :
        Optional :class:`repro.obs.Tracer`.  When attached, every run
        records virtual-time spans per rank (``compute`` / ``work`` /
        ``wait:recv``), ``send`` / ``recv`` instants, fault-injection
        and recovery instants, and folds the rank programs'
        ``begin:<x>`` / ``end:<x>`` annotations into named phase spans
        — one Perfetto thread per rank after export.  The default is
        the zero-cost no-op tracer; virtual clocks and results are
        identical either way.
    executor :
        Optional :class:`repro.parallel.executor.ExecutionBackend`
        handling :class:`~repro.parallel.executor.Compute` operations.
        An *inline* backend (:class:`~repro.parallel.executor.
        SerialExecutor`) runs each task at the yield point — results and
        virtual clocks are byte-identical to ``executor=None`` runs of a
        program that never yields ``Compute``.  A non-inline backend
        (:class:`~repro.parallel.executor.ProcessExecutor`) makes the
        service loop a ``ready-set -> dispatch -> barrier`` pipeline:
        ``Compute``-blocked ranks accumulate while the event loop drains
        every other runnable rank, and when no further progress is
        possible the whole batch is dispatched to worker processes at
        once.  Results and (with ``measure_compute=False``) virtual
        clocks remain byte-identical between backends; worker metric
        deltas are merged into :attr:`metrics` sorted by worker id at
        the end of the run, alongside ``executor.dispatches`` /
        ``executor.shm_bytes`` / ``executor.batch_width`` instruments.
        With a backend that ``requires_pickling``, unpicklable *message*
        payloads raise :class:`~repro.parallel.executor.
        PayloadPicklingError` instead of the advisory size warning.
    certify :
        When True, the scheduler stamps every message with a scalar send
        stamp and logs every send/delivery in per-rank program order —
        one list append per event on the hot path; the **vector
        clocks** of the happens-before DAG are reconstructed offline
        from that log after the run.  Then,
        :func:`repro.analysis.commgraph.hb.build_certificate` derives a
        :class:`~repro.analysis.commgraph.hb.DeterminismCertificate`
        (service-order-independent clock digest + per-channel census,
        kept in :attr:`certificate` and in the ``comm.certificate``
        metric) and flags **message races**: deliveries on one exact
        ``(src, dst, tag)`` channel whose send events are not ordered by
        happens-before — e.g. fault-injected duplicates.  With
        ``verify=True`` the replay's digest must match the primary's.
        When False (default) the clock plumbing is never entered and
        message streams are byte-identical to the plain scheduler.

    Attributes
    ----------
    metrics :
        A :class:`repro.obs.MetricsRegistry` owned by the scheduler,
        repopulated on every :meth:`run`: ``mpi.messages`` /
        ``mpi.bytes`` (global and per ``{src,dest}`` pair) and
        ``mpi.retransmissions``.  The legacy ``stats_messages`` /
        ``stats_bytes`` integers remain as fast aliases.
    """

    def __init__(
        self,
        n_ranks: int,
        cost_model: CommCostModel | None = None,
        measure_compute: bool = True,
        verify: bool = False,
        service_order: str = "ascending",
        warn_orphans: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        executor: Optional[ExecutionBackend] = None,
        certify: bool = False,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"need at least 1 rank, got {n_ranks}")
        if service_order not in ("ascending", "descending"):
            raise ValueError(
                f"service_order must be 'ascending' or 'descending', "
                f"got {service_order!r}"
            )
        self.n_ranks = n_ranks
        self.cost_model = cost_model or CommCostModel()
        self.measure_compute = measure_compute
        self.verify = verify
        self.service_order = service_order
        self.warn_orphans = warn_orphans
        self.fault_plan = fault_plan
        self.tracer: Tracer | NullTracer = tracer or NULL_TRACER
        self.executor = executor
        self.certify = certify
        self._strict_payloads = (
            executor is not None and executor.requires_pickling
        )
        self._reset_run_state()

    def _reset_run_state(self) -> None:
        """Fresh per-run state; called from ``__init__`` and ``run``.

        A ``Scheduler`` instance may be reused: each ``run()`` starts
        from zeroed clocks, statistics, trace, channels and fault state
        rather than silently accumulating the previous run's.
        """
        self.clocks: List[float] = [0.0] * self.n_ranks
        #: messages in flight / delivered, FIFO per (src, dest, tag)
        self._channels: Dict[Tuple[int, int, Hashable], deque] = defaultdict(
            deque
        )
        self.stats_messages = 0
        self.stats_bytes = 0
        #: per-run message/byte/retransmission instruments
        self.metrics = MetricsRegistry()
        #: annotated timeline instants (populated by Annotate ops)
        self.trace: List[TraceEvent] = []
        #: undelivered-message report of the last completed run
        self.orphans: List[Any] = []
        #: injected faults and recovery actions of the last run
        self.resilience = ResilienceReport()
        #: pristine copies of dropped/corrupted messages for retransmit
        self._shadow: Dict[Tuple[int, int, Hashable], deque] = defaultdict(
            deque
        )
        #: certificate of the last completed ``certify=True`` run
        self.certificate: Optional[Any] = None
        #: per-rank program-order event logs (certify only): an ``int``
        #: entry is a send stamp, a tuple entry is the raw delivery
        #: record ``(src, dst, tag, send_stamp, None, sent, t)``; vector
        #: clocks are reconstructed from these offline, keeping the hot
        #: path to one list append per event
        self._events: Optional[List[List[Any]]] = (
            [[] for _ in range(self.n_ranks)] if self.certify else None
        )
        #: monotonically increasing send-stamp counter (certify only)
        self._send_counter = 0
        #: vector-clocked delivery records ``(src, dst, tag, send_vc,
        #: recv_vc_after, sent, t)``, populated by the certificate's
        #: offline reconstruction — plain tuples so commgraph stays a
        #: lazy import
        self._deliveries: List[Tuple[Any, ...]] = []
        #: wire-message census per exact channel (certify only)
        self._census: Dict[Tuple[int, int, Hashable], int] = {}
        #: (rank, task) pairs awaiting the next dispatch barrier
        self._compute_queue: List[Tuple[int, ComputeTask]] = []
        if self.executor is not None:
            self.executor.reset_run()
        #: operations yielded per rank (crash triggers, diagnostics)
        self.op_counts: List[int] = [0] * self.n_ranks
        #: uncaught RankFailure per crashed rank
        self._crashed: Dict[int, RankFailure] = {}
        self._faults: Optional[FaultRuntime] = (
            FaultRuntime(self.fault_plan, self.resilience)
            if self.fault_plan is not None
            else None
        )
        self._sanitize_recv = False
        if self.fault_plan is not None:
            from repro.analysis.sanitize import enabled as _sanitize_enabled

            self._sanitize_recv = _sanitize_enabled()

    # ------------------------------------------------------------------
    def run(self, program: RankProgram, args: Tuple = ()) -> List[Any]:
        """Execute ``program(comm, *args)`` on every rank; return results.

        With ``verify=True`` the program is executed a second time under
        the reversed rank-service order on a scratch scheduler and the
        two result lists must freeze to identical bytes.
        """
        self._reset_run_state()
        try:
            results = self._run_pass(program, args)
        finally:
            if self._faults is not None:
                # per-rule activation counts (zero-activation rules are
                # worth surfacing) — folded even when the run fails
                self.resilience.rule_activations = (
                    self._faults.activation_summary()
                )
        if self.executor is not None:
            # deterministic fold of per-worker compute metrics deltas
            self.executor.collect_into(self.metrics)
        if self.certify:
            self._build_certificate()
        self._report_orphans()
        if self.tracer.enabled:
            self._trace_resilience()
        active = get_metrics()
        if active.enabled and active is not self.metrics:
            active.merge(self.metrics)
        if self.verify:
            self._verify_replay(program, args, results)
        return results

    def _run_pass(self, program: RankProgram, args: Tuple) -> List[Any]:
        states: List[_RankState] = []
        for rank in range(self.n_ranks):
            comm = VirtualComm(rank, self.n_ranks, self)
            gen = program(comm, *args)
            if not hasattr(gen, "send"):
                raise TypeError(
                    "rank program must be a generator function "
                    "(use 'yield comm.send(...)' style)"
                )
            states.append(_RankState(gen=gen, comm=comm))

        descending = self.service_order == "descending"
        pending = set(range(self.n_ranks))
        while pending:
            progressed = False
            for rank in sorted(pending, reverse=descending):
                state = states[rank]
                if state.compute_pending is not None:
                    continue  # parked until the dispatch barrier
                if state.blocked_on is not None:
                    if not self._try_unblock(rank, state):
                        continue
                throw, state.pending_throw = state.pending_throw, None
                self._advance(rank, state, throw=throw)
                progressed = True
                if state.finished:
                    pending.discard(rank)
            if not progressed:
                # ready-set exhausted: flush the accumulated compute
                # batch through the execution backend (barrier), then
                # let a timed-out receive expire (retransmit or
                # RecvTimeout) — lazy timeouts
                if self._flush_compute(states):
                    continue
                if self._expire_one_timeout(states, pending):
                    continue
                self._raise_deadlock(
                    {r: states[r].blocked_on for r in sorted(pending)}
                )
        if self._crashed:
            first = self._crashed[min(self._crashed)]
            raise RankFailure(
                first.rank,
                first.time,
                detail=(
                    "crash was not handled by the rank program "
                    f"(crashed ranks: {sorted(self._crashed)})"
                ),
            )
        return [states[r].result for r in range(self.n_ranks)]

    # ------------------------------------------------------------------
    def _raise_deadlock(
        self, blocked: Dict[int, Optional[Tuple[int, Hashable]]]
    ) -> None:
        from repro.analysis.commcheck import WaitForGraph

        edges = {r: b for r, b in blocked.items() if b is not None}
        graph = WaitForGraph(edges, crashed=frozenset(self._crashed))
        message = (
            f"simulated MPI deadlock; blocked ranks: {blocked}\n"
            + graph.render()
        )
        if self._faults is not None:
            dropped = [
                ev for ev in self.resilience.injected if ev.kind == "drop"
            ]
            if dropped:
                message += "\nmessages dropped by fault injection:\n" + (
                    "\n".join("  " + ev.render() for ev in dropped)
                )
        if self._crashed:
            # a crashed rank is the root cause, not the deadlock itself
            first = self._crashed[min(self._crashed)]
            raise RankFailure(
                first.rank, first.time,
                detail="crash left the remaining ranks blocked\n" + message,
            )
        raise DeadlockError(message)

    def _report_orphans(self) -> None:
        from repro.analysis.commcheck import find_orphans

        self.orphans = find_orphans(self._channels)
        if self.orphans and self.resilience.recovered:
            # messages abandoned by a recovery protocol (a retag-and-redo
            # after a crash) are an expected byproduct, not a protocol
            # mismatch — keep the structured report, skip the warning
            return
        if self.orphans and self.warn_orphans:
            report = "\n".join(o.render() for o in self.orphans)
            warnings.warn(
                "simulated MPI program exited with undelivered messages "
                f"(protocol mismatch?):\n{report}",
                OrphanMessageWarning,
                stacklevel=3,
            )

    def _build_certificate(self) -> None:
        """Derive the run's happens-before certificate (certify only)."""
        from repro.analysis.commgraph.hb import (
            build_certificate,
            reconstruct_vector_clocks,
        )

        deliveries, clocks = reconstruct_vector_clocks(
            self.n_ranks, self._events or []
        )
        self._deliveries = deliveries
        cert = build_certificate(
            self.n_ranks, deliveries, self._census, clocks,
        )
        self.certificate = cert
        self.metrics.counter("comm.certificate", digest=cert.digest).inc()
        self.metrics.counter("comm.races").inc(len(cert.races))

    def _verify_replay(
        self, program: RankProgram, args: Tuple, primary: List[Any]
    ) -> None:
        from repro.analysis.commcheck import VerificationError, compare_replays

        replay = Scheduler(
            self.n_ranks,
            cost_model=self.cost_model,
            measure_compute=self.measure_compute,
            service_order=(
                "descending" if self.service_order == "ascending"
                else "ascending"
            ),
            warn_orphans=False,
            # the plan's pseudo-randomness is hash-derived from message
            # identity, so the replay sees identical injections
            fault_plan=self.fault_plan,
            # replay determinism is about op streams, not wall-clock:
            # dispatched tasks re-run inline on a serial twin sharing
            # the payload registry
            executor=(
                self.executor.serial_clone()
                if self.executor is not None else None
            ),
            certify=self.certify,
        )
        replay_results = replay._run_pass(program, args)
        compare_replays(
            primary, replay_results,
            detail=f"service orders: {self.service_order} vs "
                   f"{replay.service_order}",
        )
        if not self.measure_compute:
            compare_replays(
                self.clocks, replay.clocks,
                detail="virtual clocks diverged under the replay order",
            )
        if self.certify:
            replay._build_certificate()
            if replay.certificate.digest != self.certificate.digest:
                raise VerificationError(
                    "determinism certificate diverged under the replay "
                    f"service order: {self.certificate.digest} vs "
                    f"{replay.certificate.digest}"
                )

    # ------------------------------------------------------------------
    def _try_unblock(self, rank: int, state: _RankState) -> bool:
        source, tag = state.blocked_on  # type: ignore[misc]
        channel = self._channels.get((source, rank, tag))
        if not channel:
            return False
        msg: _Message = channel.popleft()
        if msg.checksum is not None or self._sanitize_recv:
            verdict = self._payload_verdict(msg)
            if verdict is not None:
                return self._recover_corruption(
                    rank, state, source, tag, msg, verdict
                )
        t_blocked = self.clocks[rank]
        self.clocks[rank] = max(self.clocks[rank], msg.arrival)
        if self._events is not None:
            # _record_delivery inlined on the delivery hot path
            self._events[rank].append(
                (source, rank, tag, msg.vc, None, msg.sent,
                 self.clocks[rank])
            )
        if self.tracer.enabled:
            track = f"rank{rank}"
            if self.clocks[rank] > t_blocked:
                self.tracer.vspan(
                    "wait:recv", t_blocked, self.clocks[rank], track=track,
                    cat="comm", args={"source": source, "tag": str(tag)},
                )
            self.tracer.instant(
                "recv", t=self.clocks[rank], track=track, cat="comm",
                args={"source": source, "tag": str(tag)},
            )
        state.blocked_on = None
        state.recv_op = None
        state.send_value = msg.payload
        return True

    def _payload_verdict(self, msg: _Message) -> Optional[str]:
        """None when the payload is intact, else a diagnostic string."""
        if (
            msg.checksum is not None
            and payload_checksum(msg.payload) != msg.checksum
        ):
            return "payload checksum mismatch (injected corruption)"
        if self._sanitize_recv:
            from repro.analysis.sanitize import SanitizeError, check_payload

            try:
                check_payload("recv", msg.payload)
            except SanitizeError as exc:
                return f"sanitizer rejected payload: {exc}"
        return None

    def _recover_corruption(
        self,
        rank: int,
        state: _RankState,
        source: int,
        tag: Hashable,
        msg: _Message,
        verdict: str,
    ) -> bool:
        """Bounded retransmit of a corrupted message from the shadow copy."""
        t_detect = max(self.clocks[rank], msg.arrival)
        self.resilience.recovered.append(
            FaultEvent(
                kind="corruption-detected", time=t_detect, rank=rank,
                source=source, dest=rank, tag=tag, detail=verdict,
            )
        )
        recv_op = state.recv_op
        shadow = self._shadow.get((source, rank, tag))
        if recv_op is not None and state.retries_left > 0 and shadow:
            pristine: _Message = shadow.popleft()
            state.retries_left -= 1
            cost = recv_op.backoff + self.cost_model.transfer_time(
                payload_bytes(pristine.payload)
            )
            self.clocks[rank] = t_detect + cost
            self._record_delivery(rank, source, tag, pristine)
            self.metrics.counter("mpi.retransmissions").inc()
            self.resilience.recovered.append(
                FaultEvent(
                    kind="retransmit", time=self.clocks[rank], rank=rank,
                    source=source, dest=rank, tag=tag, cost=cost,
                    detail="pristine copy delivered after corruption",
                )
            )
            state.blocked_on = None
            state.recv_op = None
            state.send_value = pristine.payload
            return True
        detail = verdict
        if recv_op is None or recv_op.retries == 0:
            detail += "; receive specified no retries"
        elif not shadow:
            detail += "; no pristine copy available for retransmit"
        else:
            detail += f"; {recv_op.retries} retransmit attempt(s) exhausted"
        raise CorruptionError(rank, source, tag, t_detect, detail)

    def _expire_one_timeout(self, states: List[_RankState],
                            pending: set) -> bool:
        """Expire one timed-out receive at a global stall.

        Returns True when a receive was resolved (by shadow-copy
        retransmit or by throwing :class:`RecvTimeout` into the
        program), so the scheduling loop can continue.  Victim choice
        is deterministic and independent of ``service_order``:

        1. A receive that can *retransmit* (pristine shadow copy of a
           dropped/corrupted message available, retries left) is always
           preferred — retransmission is silent and side-effect free.
           Ties break rank-ascending.
        2. Otherwise :class:`RecvTimeout` is thrown into the receive
           with the *smallest timeout value* (then earliest deadline,
           then lowest rank).  Failure-detection receives are posted
           with short timeouts and protocol collectives with long ones,
           so the detection point designed to catch the exception fires
           before a collective leg that cannot.
        """
        retransmit_rank: Optional[int] = None
        throw_key: Optional[Tuple[float, float, int]] = None
        for rank in sorted(pending):
            state = states[rank]
            if state.blocked_on is None or state.recv_op is None:
                continue
            recv_op = state.recv_op
            if recv_op.timeout is None:
                continue
            source, tag = state.blocked_on
            shadow = self._shadow.get((source, rank, tag))
            if shadow and state.retries_left > 0:
                if retransmit_rank is None:
                    retransmit_rank = rank
                continue
            key = (recv_op.timeout, self.clocks[rank] + recv_op.timeout, rank)
            if throw_key is None or key < throw_key:
                throw_key = key
        if retransmit_rank is not None:
            rank = retransmit_rank
            state = states[rank]
            recv_op = state.recv_op
            source, tag = state.blocked_on
            self.clocks[rank] += recv_op.timeout
            pristine: _Message = self._shadow[(source, rank, tag)].popleft()
            state.retries_left -= 1
            cost = recv_op.backoff + self.cost_model.transfer_time(
                payload_bytes(pristine.payload)
            )
            self.clocks[rank] += cost
            self._record_delivery(rank, source, tag, pristine)
            self.metrics.counter("mpi.retransmissions").inc()
            self.resilience.recovered.append(
                FaultEvent(
                    kind="retransmit", time=self.clocks[rank],
                    rank=rank, source=source, dest=rank, tag=tag,
                    cost=recv_op.timeout + cost,
                    detail="lost message recovered after timeout",
                )
            )
            state.blocked_on = None
            state.recv_op = None
            state.send_value = pristine.payload
            self._advance(rank, state)
        elif throw_key is not None:
            rank = throw_key[2]
            state = states[rank]
            recv_op = state.recv_op
            source, tag = state.blocked_on
            self.clocks[rank] += recv_op.timeout
            self.resilience.recovered.append(
                FaultEvent(
                    kind="timeout", time=self.clocks[rank], rank=rank,
                    source=source, dest=rank, tag=tag,
                    cost=recv_op.timeout,
                    detail="no message and nothing to retransmit",
                )
            )
            exc = RecvTimeout(rank, source, tag, self.clocks[rank])
            state.blocked_on = None
            state.recv_op = None
            self._advance(rank, state, throw=exc)
        else:
            return False
        if state.finished:
            pending.discard(rank)
        return True

    def _advance(
        self,
        rank: int,
        state: _RankState,
        throw: Optional[BaseException] = None,
    ) -> None:
        """Resume a runnable rank until it blocks or finishes.

        ``throw`` injects an exception (crash, receive timeout) into the
        generator instead of sending a value on the first resume.
        """
        while True:
            if self._faults is not None and throw is None:
                crash = self._faults.crash_due(
                    rank, self.op_counts[rank], self.clocks[rank]
                )
                if crash is not None:
                    throw = RankFailure(rank, self.clocks[rank])
                    self.resilience.injected.append(
                        FaultEvent(
                            kind="crash", time=self.clocks[rank], rank=rank,
                            detail=(
                                f"after_ops={crash.after_ops} "
                                f"at_time={crash.at_time}"
                            ),
                        )
                    )
            t_wall = time.perf_counter()
            try:
                if throw is not None:
                    exc, throw = throw, None
                    op = state.gen.throw(exc)
                    if isinstance(exc, RankFailure):
                        self.resilience.recovered.append(
                            FaultEvent(
                                kind="crash-handled", time=self.clocks[rank],
                                rank=rank,
                                detail="rank program caught RankFailure",
                            )
                        )
                else:
                    op = state.gen.send(state.send_value)
            except StopIteration as stop:
                self._charge_compute(rank, t_wall)
                state.finished = True
                state.result = stop.value
                return
            except RankFailure as failure:
                # the program did not catch the crash: the rank is dead
                self._charge_compute(rank, t_wall)
                state.finished = True
                state.result = failure
                self._crashed[rank] = failure
                self.resilience.recovered.append(
                    FaultEvent(
                        kind="crash-uncaught", time=self.clocks[rank],
                        rank=rank, detail="rank died (policy: fail)",
                    )
                )
                return
            self._charge_compute(rank, t_wall)
            state.send_value = None

            self.op_counts[rank] += 1
            if isinstance(op, Compute):
                if self.executor is None:
                    raise TypeError(
                        f"rank {rank} yielded a Compute operation but the "
                        "scheduler has no execution backend; construct "
                        "Scheduler(..., executor=SerialExecutor()) or run "
                        "without dispatch"
                    )
                if self.executor.inline:
                    result = self.executor.execute(op.task)
                    self._account_compute(rank, op.task, result)
                    if result.error is not None:
                        throw = result.error
                        continue
                    state.send_value = result.value
                    continue
                # non-inline: park the rank until the dispatch barrier
                state.compute_pending = op.task
                self._compute_queue.append((rank, op.task))
                return
            if isinstance(op, Send):
                if self._faults is not None:
                    self._faulty_send(rank, op)
                    continue
                nbytes = self._message_bytes(rank, op)
                self.clocks[rank] += self.cost_model.send_overhead
                arrival = self.clocks[rank] + self.cost_model.transfer_time(nbytes)
                if self._events is None:
                    vc = None
                else:
                    # _stamp_send inlined on the eager-send hot path
                    self._send_counter = vc = self._send_counter + 1
                    self._events[rank].append(vc)
                self._channels[(rank, op.dest, op.tag)].append(
                    _Message(payload=op.payload, arrival=arrival,
                             sent=self.clocks[rank], vc=vc)
                )
                self._count_message(rank, op.dest, op.tag, nbytes, arrival)
                continue  # eager send: keep running this rank
            if isinstance(op, Recv):
                state.blocked_on = (op.source, op.tag)
                state.recv_op = op
                state.retries_left = op.retries
                if self._try_unblock(rank, state):
                    continue
                return
            if isinstance(op, Work):
                t0 = self.clocks[rank]
                self.clocks[rank] += op.seconds
                if self.tracer.enabled and op.seconds > 0:
                    self.tracer.vspan("work", t0, self.clocks[rank],
                                      track=f"rank{rank}", cat="compute")
                continue
            if isinstance(op, Annotate):
                self.trace.append(
                    TraceEvent(rank=rank, label=op.label,
                               time=self.clocks[rank], data=op.data)
                )
                if self.tracer.enabled:
                    self.tracer.annotate(f"rank{rank}", op.label,
                                         self.clocks[rank], data=op.data)
                continue
            raise TypeError(
                f"rank {rank} yielded unsupported operation {op!r}"
            )

    def _message_bytes(self, rank: int, op: Send) -> int:
        """On-wire size of a send; strict under a process backend."""
        if not self._strict_payloads:
            return payload_bytes(op.payload)
        try:
            return payload_bytes(op.payload, strict=True)
        except PayloadPicklingError as exc:
            raise PayloadPicklingError(
                exc.type_name, rank=rank, dest=op.dest, tag=op.tag,
                cause=exc.__cause__,
            ) from exc

    def _flush_compute(self, states: List[_RankState]) -> bool:
        """Dispatch the parked compute batch through the backend.

        Called only when the ready set is empty, so the batch is the
        *maximal* set of concurrently runnable tasks the event loop
        could prove — the ``ready-set -> dispatch -> barrier`` phase.
        Results are written back (values as resume arguments, errors as
        injected exceptions) before any virtual clock advances past the
        barrier.  Returns True when a batch ran.
        """
        if not self._compute_queue:
            return False
        batch, self._compute_queue = self._compute_queue, []
        results = self.executor.dispatch([task for _, task in batch])
        for ev in self.executor.drain_events():
            # backend-side recovery (pool respawn + batch re-dispatch)
            # surfaces in the run's resilience report, stamped with the
            # virtual time of the dispatch barrier
            self.resilience.recovered.append(
                FaultEvent(
                    kind=ev.get("kind", "pool-respawn"),
                    time=max(self.clocks) if self.clocks else 0.0,
                    detail=ev.get("detail", ""),
                )
            )
        self.metrics.histogram("executor.batch_width").observe(len(batch))
        for (rank, task), result in zip(batch, results):
            state = states[rank]
            state.compute_pending = None
            self._account_compute(rank, task, result)
            if result.error is not None:
                state.pending_throw = result.error
            else:
                state.send_value = result.value
        return True

    def _account_compute(
        self, rank: int, task: ComputeTask, result: DispatchResult
    ) -> None:
        """Clock charge, metrics and trace spans for one executed task."""
        self.metrics.counter(
            "executor.dispatches", backend=self.executor.name
        ).inc()
        self.metrics.counter(
            "executor.dispatches", payload=task.payload, method=task.method
        ).inc()
        if result.shm_bytes:
            self.metrics.counter("executor.shm_bytes").inc(result.shm_bytes)
        if self.measure_compute and result.elapsed > 0:
            t0 = self.clocks[rank]
            self.clocks[rank] += result.elapsed * self.cost_model.compute_scale
            if self.tracer.enabled:
                self.tracer.vspan(
                    "compute", t0, self.clocks[rank], track=f"rank{rank}",
                    cat="compute",
                    args={"payload": task.payload, "method": task.method},
                )
        if self.tracer.enabled:
            # genuine wall-clock overlap: one Perfetto thread per worker
            self.tracer.wspan(
                f"{task.payload}.{task.method}",
                result.wall_t0, result.wall_t1,
                track=f"worker{result.worker}", cat="executor",
                args={"rank": rank, "backend": self.executor.name},
            )

    def _faulty_send(self, rank: int, op: Send) -> None:
        """Send path with the fault plan's disposition applied."""
        disp = self._faults.on_send(rank, op.dest, op.tag)
        nbytes = self._message_bytes(rank, op)
        self.clocks[rank] += self.cost_model.send_overhead
        arrival = (
            self.clocks[rank]
            + self.cost_model.transfer_time(nbytes)
            + disp.extra_delay
        )
        # one logical send event: shadow copies and injected duplicates
        # all carry the same send stamp, so their reconstructed vector
        # clocks are *equal* under happens-before — what certify flags
        sent_t = self.clocks[rank]
        send_vc = self._stamp_send(rank)
        self._count_message(rank, op.dest, op.tag, nbytes, arrival)
        if disp.extra_delay:
            self.resilience.injected.append(
                FaultEvent(
                    kind="delay", time=self.clocks[rank], source=rank,
                    dest=op.dest, tag=op.tag,
                    detail=f"arrival postponed by {disp.extra_delay:.9g}s",
                )
            )
        if disp.drop:
            # keep the pristine copy for link-layer retransmission
            self._shadow[(rank, op.dest, op.tag)].append(
                _Message(payload=op.payload, arrival=arrival,
                         sent=sent_t, vc=send_vc)
            )
            self.resilience.injected.append(
                FaultEvent(
                    kind="drop", time=self.clocks[rank], source=rank,
                    dest=op.dest, tag=op.tag,
                )
            )
            return
        payload = op.payload
        checksum = None
        if disp.corrupt:
            checksum = payload_checksum(payload)
            self._shadow[(rank, op.dest, op.tag)].append(
                _Message(payload=payload, arrival=arrival, checksum=checksum,
                         sent=sent_t, vc=send_vc)
            )
            payload = corrupt_payload(payload, disp.key)
            self.resilience.injected.append(
                FaultEvent(
                    kind="corrupt", time=self.clocks[rank], source=rank,
                    dest=op.dest, tag=op.tag,
                    detail="bit-level payload corruption",
                )
            )
        message = _Message(payload=payload, arrival=arrival,
                           checksum=checksum, sent=sent_t, vc=send_vc)
        self._channels[(rank, op.dest, op.tag)].append(message)
        for _ in range(disp.duplicates):
            self._channels[(rank, op.dest, op.tag)].append(message)
            self._count_message(rank, op.dest, op.tag, nbytes, arrival)
            self.resilience.injected.append(
                FaultEvent(
                    kind="duplicate", time=self.clocks[rank], source=rank,
                    dest=op.dest, tag=op.tag,
                )
            )

    def _charge_compute(self, rank: int, t_start: float) -> None:
        if self.measure_compute:
            elapsed = time.perf_counter() - t_start
            if elapsed > 0:
                t0 = self.clocks[rank]
                self.clocks[rank] += elapsed * self.cost_model.compute_scale
                if self.tracer.enabled:
                    self.tracer.vspan("compute", t0, self.clocks[rank],
                                      track=f"rank{rank}", cat="compute")

    def _stamp_send(self, rank: int) -> Optional[int]:
        """Log a send event; return its scalar stamp (certify only).

        The stamp is a globally unique sequence number — just enough
        for the offline reconstruction to identify the send event; no
        vector clock is touched on the hot path.  (The eager-send fast
        path inlines this; only fault-injection paths call it.)
        """
        if self._events is None:
            return None
        self._send_counter = seq = self._send_counter + 1
        self._events[rank].append(seq)
        return seq

    def _record_delivery(self, rank: int, source: int, tag: Hashable,
                         msg: _Message) -> None:
        """Log a delivery event (certify only).

        The record is a plain tuple ``(src, dst, tag, send_stamp, None,
        sent_time, deliver_time)`` so the commgraph subsystem stays a
        lazy import of the scheduler; :func:`repro.analysis.commgraph.
        hb.reconstruct_vector_clocks` later replays the event logs and
        fills the send/recv vector clocks.  (The healthy delivery fast
        path inlines this; only corruption-recovery paths call it.)
        """
        if self._events is None:
            return
        self._events[rank].append(
            (source, rank, tag, msg.vc, None, msg.sent, self.clocks[rank])
        )

    def _count_message(self, src: int, dest: int, tag: Hashable,
                       nbytes: int, arrival: float) -> None:
        """Account one sent message (counters, tracer instant)."""
        self.stats_messages += 1
        self.stats_bytes += nbytes
        if self.certify:
            key = (src, dest, tag)
            self._census[key] = self._census.get(key, 0) + 1
        self.metrics.counter("mpi.messages").inc()
        self.metrics.counter("mpi.bytes").inc(nbytes)
        self.metrics.counter("mpi.messages", src=src, dest=dest).inc()
        self.metrics.counter("mpi.bytes", src=src, dest=dest).inc(nbytes)
        if self.tracer.enabled:
            self.tracer.instant(
                "send", t=self.clocks[src], track=f"rank{src}", cat="comm",
                args={"dest": dest, "tag": str(tag), "bytes": nbytes,
                      "arrival": arrival},
            )

    def _trace_resilience(self) -> None:
        """Mirror the run's fault/recovery events onto the trace."""
        for cat, events in (("fault", self.resilience.injected),
                            ("recovery", self.resilience.recovered)):
            for ev in events:
                owner = ev.rank if ev.rank is not None else ev.source
                track = f"rank{owner}" if owner is not None else "main"
                args: Dict[str, Any] = {}
                for key in ("source", "dest", "tag", "detail", "cost"):
                    value = getattr(ev, key, None)
                    if value is not None:
                        args[key] = (str(value) if key == "tag" else value)
                self.tracer.instant(ev.kind, t=ev.time, track=track,
                                    cat=cat, args=args or None)

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Virtual wall-clock of the whole run (max over rank clocks)."""
        return max(self.clocks)
