"""Deterministic discrete-event simulated MPI.

The paper's Fig. 8 runs PFASST with ``P_T`` MPI ranks along the time axis on
a Blue Gene/P.  Here each rank is a Python *generator* that yields
communication operations; a scheduler matches sends to receives, advances
per-rank **virtual clocks**, and thereby measures the parallel wall-clock
the same program would need on a message-passing machine:

* compute time   — real ``perf_counter`` time a rank spends between yields,
  scaled by ``compute_scale`` (so a Python tree walk can stand in for a
  Fortran one), plus explicit ``work(seconds)`` charges for modelled costs;
* message time   — LogP-style ``latency + bytes/bandwidth`` per message,
  charged between the sender's send instant and the receiver's completion.

Sends are *eager* (buffered): the sender only pays an overhead and
continues, mirroring MPI_Isend-based pipelined PFASST where fine-level
sends overlap with computation.  Receives block until the matching message
has arrived in virtual time.

The scheduler is deterministic: message matching is FIFO per
``(source, dest, tag)`` channel and independent of the interleaving chosen,
so numerical results never depend on the (virtual) timing model.

Example
-------
>>> def program(comm):
...     if comm.rank == 0:
...         yield comm.send(1, "token", 42)
...     else:
...         value = yield comm.recv(0, "token")
...         return value
>>> sched = Scheduler(2)
>>> sched.run(program)
[None, 42]
"""

from __future__ import annotations

import pickle
import time
import warnings
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Hashable, List, Optional, Tuple

import numpy as np

__all__ = [
    "CommCostModel",
    "Send",
    "Recv",
    "Work",
    "VirtualComm",
    "Scheduler",
    "DeadlockError",
    "OrphanMessageWarning",
    "payload_bytes",
]


class OrphanMessageWarning(UserWarning):
    """Messages were sent but never received by program exit."""


class DeadlockError(RuntimeError):
    """All unfinished ranks are blocked on receives that can never arrive."""


@dataclass(frozen=True)
class CommCostModel:
    """LogP-flavoured communication cost parameters (seconds, bytes/s).

    Defaults are Blue Gene/P-like interconnect figures (MPI latency a few
    microseconds, ~375 MB/s per link); they only affect virtual clocks,
    never numerics.
    """

    latency: float = 3.5e-6
    bandwidth: float = 375e6
    send_overhead: float = 1.0e-6
    #: multiplier applied to measured real compute time
    compute_scale: float = 1.0

    def transfer_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth


def payload_bytes(payload: Any) -> int:
    """Estimate the on-wire size of a message payload."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if payload is None:
        return 8
    if isinstance(payload, (int, float, bool, np.floating, np.integer)):
        return 8
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - exotic unpicklable payloads
        return 64


# -- operations a rank program may yield -----------------------------------
@dataclass(frozen=True)
class Send:
    dest: int
    tag: Hashable
    payload: Any


@dataclass(frozen=True)
class Recv:
    source: int
    tag: Hashable


@dataclass(frozen=True)
class Work:
    """Charge ``seconds`` of *modelled* compute time to the rank's clock."""

    seconds: float


@dataclass(frozen=True)
class Annotate:
    """Record a labelled instant on the rank's virtual timeline.

    Used to reconstruct schedule diagrams (paper Fig. 6): a rank program
    yields ``comm.annotate("fine_sweep")`` / ``comm.annotate("end")``
    around its phases and the scheduler stores ``TraceEvent`` entries.
    """

    label: str


@dataclass(frozen=True)
class TraceEvent:
    """One annotated instant: ``(rank, label, virtual_time)``."""

    rank: int
    label: str
    time: float


@dataclass
class _Message:
    payload: Any
    arrival: float


class VirtualComm:
    """Per-rank handle: op constructors plus rank/size/clock introspection.

    Rank programs *yield* the operations::

        yield comm.send(dest, tag, payload)
        value = yield comm.recv(source, tag)
        yield comm.work(0.01)
    """

    def __init__(self, rank: int, size: int, scheduler: "Scheduler") -> None:
        self.rank = rank
        self.size = size
        self._scheduler = scheduler

    def send(self, dest: int, tag: Hashable, payload: Any) -> Send:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range 0..{self.size - 1}")
        if dest == self.rank:
            raise ValueError("self-sends are not supported")
        return Send(dest, tag, payload)

    def recv(self, source: int, tag: Hashable) -> Recv:
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range 0..{self.size - 1}")
        if source == self.rank:
            raise ValueError("self-receives are not supported")
        return Recv(source, tag)

    def work(self, seconds: float) -> Work:
        if seconds < 0:
            raise ValueError(f"work seconds must be >= 0, got {seconds}")
        return Work(seconds)

    def annotate(self, label: str) -> Annotate:
        return Annotate(label)

    @property
    def clock(self) -> float:
        """Current virtual time of this rank (seconds)."""
        return self._scheduler.clocks[self.rank]


RankProgram = Callable[[VirtualComm], Generator[Any, Any, Any]]


@dataclass
class _RankState:
    gen: Generator[Any, Any, Any]
    comm: VirtualComm
    blocked_on: Optional[Tuple[int, Hashable]] = None
    finished: bool = False
    result: Any = None
    send_value: Any = None  # value fed into the generator on next resume


class Scheduler:
    """Run ``n_ranks`` rank programs to completion under virtual time.

    Parameters
    ----------
    n_ranks :
        Number of simulated ranks.
    cost_model :
        Communication/compute cost parameters.
    measure_compute :
        When True (default), real wall time between yields is added to the
        rank's virtual clock (scaled by ``compute_scale``).  Disable for
        pure-numerics runs where timing is irrelevant.
    verify :
        Replay mode (a practical race detector): after the primary run,
        re-execute the whole program under the *reversed* rank-service
        order and require byte-identical results
        (:func:`repro.analysis.commcheck.freeze`).  Schedule-dependent
        numerics — shared mutable state across rank generators, matching
        that leaks the interleaving — raise
        :class:`repro.analysis.commcheck.VerificationError`.  With
        ``measure_compute=False`` the virtual clocks must also agree.
        The program runs twice, so rank programs must tolerate
        re-execution from scratch.
    service_order :
        Order in which runnable ranks are advanced per scheduling round:
        ``"ascending"`` (default) or ``"descending"``.  Deterministic
        numerics must not depend on it; ``verify=True`` checks exactly
        that.
    warn_orphans :
        Emit an :class:`OrphanMessageWarning` when messages remain
        undelivered after every rank finished (see
        :func:`repro.analysis.commcheck.find_orphans`); the structured
        report is kept in :attr:`orphans` either way.
    """

    def __init__(
        self,
        n_ranks: int,
        cost_model: CommCostModel | None = None,
        measure_compute: bool = True,
        verify: bool = False,
        service_order: str = "ascending",
        warn_orphans: bool = True,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"need at least 1 rank, got {n_ranks}")
        if service_order not in ("ascending", "descending"):
            raise ValueError(
                f"service_order must be 'ascending' or 'descending', "
                f"got {service_order!r}"
            )
        self.n_ranks = n_ranks
        self.cost_model = cost_model or CommCostModel()
        self.measure_compute = measure_compute
        self.verify = verify
        self.service_order = service_order
        self.warn_orphans = warn_orphans
        self.clocks: List[float] = [0.0] * n_ranks
        #: messages in flight / delivered, FIFO per (src, dest, tag)
        self._channels: Dict[Tuple[int, int, Hashable], deque] = defaultdict(deque)
        self.stats_messages = 0
        self.stats_bytes = 0
        #: annotated timeline instants (populated by Annotate ops)
        self.trace: List[TraceEvent] = []
        #: undelivered-message report of the last completed run
        self.orphans: List[Any] = []

    # ------------------------------------------------------------------
    def run(self, program: RankProgram, args: Tuple = ()) -> List[Any]:
        """Execute ``program(comm, *args)`` on every rank; return results.

        With ``verify=True`` the program is executed a second time under
        the reversed rank-service order on a scratch scheduler and the
        two result lists must freeze to identical bytes.
        """
        results = self._run_pass(program, args)
        self._report_orphans()
        if self.verify:
            self._verify_replay(program, args, results)
        return results

    def _run_pass(self, program: RankProgram, args: Tuple) -> List[Any]:
        states: List[_RankState] = []
        for rank in range(self.n_ranks):
            comm = VirtualComm(rank, self.n_ranks, self)
            gen = program(comm, *args)
            if not hasattr(gen, "send"):
                raise TypeError(
                    "rank program must be a generator function "
                    "(use 'yield comm.send(...)' style)"
                )
            states.append(_RankState(gen=gen, comm=comm))

        descending = self.service_order == "descending"
        pending = set(range(self.n_ranks))
        while pending:
            progressed = False
            for rank in sorted(pending, reverse=descending):
                state = states[rank]
                if state.blocked_on is not None:
                    if not self._try_unblock(rank, state):
                        continue
                self._advance(rank, state)
                progressed = True
                if state.finished:
                    pending.discard(rank)
            if not progressed:
                self._raise_deadlock(
                    {r: states[r].blocked_on for r in sorted(pending)}
                )
        return [states[r].result for r in range(self.n_ranks)]

    # ------------------------------------------------------------------
    def _raise_deadlock(
        self, blocked: Dict[int, Optional[Tuple[int, Hashable]]]
    ) -> None:
        from repro.analysis.commcheck import WaitForGraph

        edges = {r: b for r, b in blocked.items() if b is not None}
        graph = WaitForGraph(edges)
        raise DeadlockError(
            f"simulated MPI deadlock; blocked ranks: {blocked}\n"
            + graph.render()
        )

    def _report_orphans(self) -> None:
        from repro.analysis.commcheck import find_orphans

        self.orphans = find_orphans(self._channels)
        if self.orphans and self.warn_orphans:
            report = "\n".join(o.render() for o in self.orphans)
            warnings.warn(
                "simulated MPI program exited with undelivered messages "
                f"(protocol mismatch?):\n{report}",
                OrphanMessageWarning,
                stacklevel=3,
            )

    def _verify_replay(
        self, program: RankProgram, args: Tuple, primary: List[Any]
    ) -> None:
        from repro.analysis.commcheck import compare_replays

        replay = Scheduler(
            self.n_ranks,
            cost_model=self.cost_model,
            measure_compute=self.measure_compute,
            service_order=(
                "descending" if self.service_order == "ascending"
                else "ascending"
            ),
            warn_orphans=False,
        )
        replay_results = replay._run_pass(program, args)
        compare_replays(
            primary, replay_results,
            detail=f"service orders: {self.service_order} vs "
                   f"{replay.service_order}",
        )
        if not self.measure_compute:
            compare_replays(
                self.clocks, replay.clocks,
                detail="virtual clocks diverged under the replay order",
            )

    # ------------------------------------------------------------------
    def _try_unblock(self, rank: int, state: _RankState) -> bool:
        source, tag = state.blocked_on  # type: ignore[misc]
        channel = self._channels.get((source, rank, tag))
        if not channel:
            return False
        msg: _Message = channel.popleft()
        self.clocks[rank] = max(self.clocks[rank], msg.arrival)
        state.blocked_on = None
        state.send_value = msg.payload
        return True

    def _advance(self, rank: int, state: _RankState) -> None:
        """Resume a runnable rank until it blocks or finishes."""
        while True:
            t_wall = time.perf_counter()
            try:
                op = state.gen.send(state.send_value)
            except StopIteration as stop:
                self._charge_compute(rank, t_wall)
                state.finished = True
                state.result = stop.value
                return
            self._charge_compute(rank, t_wall)
            state.send_value = None

            if isinstance(op, Send):
                nbytes = payload_bytes(op.payload)
                self.clocks[rank] += self.cost_model.send_overhead
                arrival = self.clocks[rank] + self.cost_model.transfer_time(nbytes)
                self._channels[(rank, op.dest, op.tag)].append(
                    _Message(payload=op.payload, arrival=arrival)
                )
                self.stats_messages += 1
                self.stats_bytes += nbytes
                continue  # eager send: keep running this rank
            if isinstance(op, Recv):
                state.blocked_on = (op.source, op.tag)
                if self._try_unblock(rank, state):
                    continue
                return
            if isinstance(op, Work):
                self.clocks[rank] += op.seconds
                continue
            if isinstance(op, Annotate):
                self.trace.append(
                    TraceEvent(rank=rank, label=op.label,
                               time=self.clocks[rank])
                )
                continue
            raise TypeError(
                f"rank {rank} yielded unsupported operation {op!r}"
            )

    def _charge_compute(self, rank: int, t_start: float) -> None:
        if self.measure_compute:
            elapsed = time.perf_counter() - t_start
            self.clocks[rank] += elapsed * self.cost_model.compute_scale

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Virtual wall-clock of the whole run (max over rank clocks)."""
        return max(self.clocks)
