"""Space-time(-node) process topology (paper Fig. 2 + PFASST-ER).

A run with ``P_T`` time slices and ``P_S`` spatial ranks per slice uses a
``P_T x P_S`` grid of processes.  Each process belongs to exactly two
communicators: a *space* communicator (one PEPC instance, row of the grid)
and a *time* communicator (the i-th member of every PEPC instance, column
of the grid).  These helpers map between world ranks and grid coordinates
and enumerate the communicator memberships.

:class:`SpaceTimeNodeGrid` adds PFASST-ER's third dimension: ``P_N`` node
ranks per time-space cell share the collocation nodes of that cell's SDC
sweeps (diagonal sweeper, one *node* communicator per cell).  The layout
is time-major then space-major then node:
``r = (t * p_space + s) * p_nodes + n``, so a ``p_nodes = 1`` grid has
exactly the 2D rank numbering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["SpaceTimeGrid", "SpaceTimeNodeGrid"]


@dataclass(frozen=True)
class SpaceTimeGrid:
    """Cartesian decomposition of world ranks into (time, space) coords.

    World rank layout is time-major: rank ``r`` has time slice
    ``r // p_space`` and spatial index ``r % p_space``, matching the paper's
    "duplicate the PEPC structure P_T times" construction.
    """

    p_time: int
    p_space: int

    def __post_init__(self) -> None:
        if self.p_time < 1 or self.p_space < 1:
            raise ValueError(
                f"grid extents must be >= 1, got ({self.p_time}, {self.p_space})"
            )

    @property
    def world_size(self) -> int:
        return self.p_time * self.p_space

    def coords(self, world_rank: int) -> Tuple[int, int]:
        """Return ``(time_slice, space_index)`` of a world rank."""
        self._check(world_rank)
        return divmod(world_rank, self.p_space)

    def world_rank(self, time_slice: int, space_index: int) -> int:
        if not 0 <= time_slice < self.p_time:
            raise ValueError(f"time_slice {time_slice} out of range")
        if not 0 <= space_index < self.p_space:
            raise ValueError(f"space_index {space_index} out of range")
        return time_slice * self.p_space + space_index

    def space_comm(self, world_rank: int) -> List[int]:
        """World ranks sharing this rank's PEPC (space) communicator."""
        t, _ = self.coords(world_rank)
        return [self.world_rank(t, s) for s in range(self.p_space)]

    def time_comm(self, world_rank: int) -> List[int]:
        """World ranks sharing this rank's PFASST (time) communicator."""
        _, s = self.coords(world_rank)
        return [self.world_rank(t, s) for t in range(self.p_time)]

    def time_row(self, time_slice: int) -> List[int]:
        """All world ranks of one time slice (the recovery resync unit)."""
        if not 0 <= time_slice < self.p_time:
            raise ValueError(f"time_slice {time_slice} out of range")
        return [self.world_rank(time_slice, s) for s in range(self.p_space)]

    def _check(self, world_rank: int) -> None:
        if not 0 <= world_rank < self.world_size:
            raise ValueError(
                f"world rank {world_rank} out of range 0..{self.world_size - 1}"
            )


@dataclass(frozen=True)
class SpaceTimeNodeGrid:
    """Cartesian decomposition into (time, space, node) coordinates.

    Extends :class:`SpaceTimeGrid` with PFASST-ER's node dimension: each
    ``(t, s)`` cell holds ``p_nodes`` ranks that share the diagonal
    sweeper's node-parallel RHS evaluations.  World rank layout is
    ``r = (t * p_space + s) * p_nodes + n`` — time-major, then space,
    then node — so the ``p_nodes = 1`` numbering coincides with the 2D
    grid's.
    """

    p_time: int
    p_space: int
    p_nodes: int

    def __post_init__(self) -> None:
        if self.p_time < 1 or self.p_space < 1 or self.p_nodes < 1:
            raise ValueError(
                "grid extents must be >= 1, got "
                f"({self.p_time}, {self.p_space}, {self.p_nodes})"
            )

    @property
    def world_size(self) -> int:
        return self.p_time * self.p_space * self.p_nodes

    def coords(self, world_rank: int) -> Tuple[int, int, int]:
        """Return ``(time_slice, space_index, node_index)``."""
        self._check(world_rank)
        cell, n = divmod(world_rank, self.p_nodes)
        t, s = divmod(cell, self.p_space)
        return t, s, n

    def world_rank(
        self, time_slice: int, space_index: int, node_index: int
    ) -> int:
        if not 0 <= time_slice < self.p_time:
            raise ValueError(f"time_slice {time_slice} out of range")
        if not 0 <= space_index < self.p_space:
            raise ValueError(f"space_index {space_index} out of range")
        if not 0 <= node_index < self.p_nodes:
            raise ValueError(f"node_index {node_index} out of range")
        return (
            time_slice * self.p_space + space_index
        ) * self.p_nodes + node_index

    def space_comm(self, world_rank: int) -> List[int]:
        """Ranks sharing this rank's PEPC (space) communicator."""
        t, _, n = self.coords(world_rank)
        return [self.world_rank(t, s, n) for s in range(self.p_space)]

    def time_comm(self, world_rank: int) -> List[int]:
        """Ranks sharing this rank's PFASST (time) communicator."""
        _, s, n = self.coords(world_rank)
        return [self.world_rank(t, s, n) for t in range(self.p_time)]

    def node_comm(self, world_rank: int) -> List[int]:
        """Ranks sharing this rank's PFASST-ER node communicator."""
        t, s, _ = self.coords(world_rank)
        return [self.world_rank(t, s, n) for n in range(self.p_nodes)]

    def time_row(self, time_slice: int) -> List[int]:
        """All world ranks of one time slice (the recovery resync unit)."""
        if not 0 <= time_slice < self.p_time:
            raise ValueError(f"time_slice {time_slice} out of range")
        return [
            self.world_rank(time_slice, s, n)
            for s in range(self.p_space)
            for n in range(self.p_nodes)
        ]

    def _check(self, world_rank: int) -> None:
        if not 0 <= world_rank < self.world_size:
            raise ValueError(
                f"world rank {world_rank} out of range 0..{self.world_size - 1}"
            )
