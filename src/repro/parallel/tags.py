"""Central message-tag registry for the simulated MPI.

Every point-to-point tag and collective base tag in this repository is a
string *head* — alone (``"space:brx"``) or as the first element of a
tuple carrying routing components (``("lvl", block, attempt, lev, k)``).
Before this module existed the heads were scattered string literals, and
nothing stopped two subsystems from picking the same head: traffic on the
colliding channels would silently interleave FIFO-style, deterministic
per run but *not* the channels the programs meant — exactly the bug class
that is invisible to one replay and fatal once a third process dimension
(PFASST-ER node comms) or a serving layer multiplexes more programs onto
one scheduler world.

The registry makes tag heads a checked namespace:

* every head is declared **once**, with its owning subsystem, its tuple
  arity (components after the head; ``None`` for bare/derived tags) and —
  for the PFASST recovery protocol — which component carries the restart
  ``attempt`` counter;
* declaring the same head twice raises :class:`TagCollisionError` at
  import time;
* call sites reference the exported constants (``PRED``, ``SPACE_BRX``,
  ...) instead of re-spelling the literal — enforced by ``repro-lint``
  rule RPR007 and by the ``repro-comm check`` skeleton verifier;
* :func:`tag_class` maps any on-the-wire tag — including tags wrapped by
  nested :class:`~repro.parallel.simmpi.SubComm` translation
  ``(comm_id, tag)`` and the split protocol's derived forms — back to
  its registered head, which is the grouping key for orphan reports and
  happens-before race certification.

The constant *values* are exactly the pre-registry literals, so message
streams, virtual clocks and replay digests are byte-identical across the
migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional

__all__ = [
    "TagCollisionError",
    "TagFamily",
    "TagRegistry",
    "REGISTRY",
    "register",
    "family_of",
    "tag_head",
    "tag_class",
    "attempt_of",
    # -- pfasst controller --
    "PRED",
    "LVL",
    "FTUB",
    "FTPRED",
    "FTSYNC",
    "FTWARM",
    "FTROW",
    "RTOL",
    "BLOCKEND",
    # -- space-parallel tree --
    "SPACE_BRX",
    "SPACE_RHS",
    "SPACE_DIGEST",
    # -- node-parallel sweeps (PFASST-ER) --
    "NODE_F",
    "NODE_DIGEST",
    # -- collective sub-phase defaults --
    "BCAST",
    "REDUCE",
    "ALLREDUCE",
    "GATHER",
    "SCATTER",
    "ALLGATHER",
    "BARRIER",
    # -- simulated-MPI infrastructure --
    "SPLIT",
    "SUBCOMM",
    "FTEPOCH",
]


class TagCollisionError(RuntimeError):
    """Two subsystems declared (or used) the same tag head."""


@dataclass(frozen=True)
class TagFamily:
    """One registered tag head and its shape contract.

    ``arity`` is the number of tuple components *after* the head at
    construction sites (``("lvl", block, attempt, lev, k)`` has arity 4);
    ``None`` means the head is used bare or with derived/variable shapes
    (collective base tags, infrastructure wrappers).  ``attempt_index``
    names the 0-based component (after the head) carrying the PFASST
    restart attempt counter, used by orphan reports to summarise
    recovery-protocol retag storms.  ``shared`` marks infrastructure
    families (collective sub-phases, the split protocol) that any
    subsystem may legitimately route traffic through.
    """

    head: str
    subsystem: str
    arity: Optional[int] = None
    description: str = ""
    attempt_index: Optional[int] = None
    shared: bool = False


class TagRegistry:
    """Mapping of tag heads to :class:`TagFamily`, collision-checked."""

    def __init__(self) -> None:
        self._families: Dict[str, TagFamily] = {}

    def register(
        self,
        head: str,
        subsystem: str,
        arity: Optional[int] = None,
        description: str = "",
        attempt_index: Optional[int] = None,
        shared: bool = False,
    ) -> str:
        """Declare a tag family; returns ``head`` for constant binding."""
        if not isinstance(head, str) or not head:
            raise ValueError(f"tag head must be a non-empty string, got {head!r}")
        existing = self._families.get(head)
        if existing is not None:
            raise TagCollisionError(
                f"tag head {head!r} already registered by subsystem "
                f"{existing.subsystem!r}; subsystem {subsystem!r} must pick "
                "a distinct head (colliding channels interleave silently)"
            )
        self._families[head] = TagFamily(
            head=head,
            subsystem=subsystem,
            arity=arity,
            description=description,
            attempt_index=attempt_index,
            shared=shared,
        )
        return head

    def family_of(self, head: Hashable) -> Optional[TagFamily]:
        if isinstance(head, str):
            return self._families.get(head)
        return None

    def __contains__(self, head: object) -> bool:
        return isinstance(head, str) and head in self._families

    def families(self) -> List[TagFamily]:
        return [self._families[h] for h in sorted(self._families)]


#: the process-wide registry all subsystems declare into at import time
REGISTRY = TagRegistry()


def register(
    head: str,
    subsystem: str,
    arity: Optional[int] = None,
    description: str = "",
    attempt_index: Optional[int] = None,
    shared: bool = False,
) -> str:
    return REGISTRY.register(
        head, subsystem, arity, description, attempt_index, shared
    )


# ---------------------------------------------------------------------------
# family declarations (values are the historical literals — byte-identical
# message streams across the migration)
# ---------------------------------------------------------------------------

# PFASST controller (repro/pfasst/controller.py)
PRED = register(
    "pred", "pfasst", 3, "predictor staircase hand-off (block, attempt, j)",
    attempt_index=1,
)
LVL = register(
    "lvl", "pfasst", 4,
    "V-cycle slice end value forward (block, attempt, lev, k)",
    attempt_index=1,
)
FTUB = register(
    "ftub", "pfasst", 2, "recovery block-initial-value refetch bcast",
    attempt_index=1,
)
FTPRED = register(
    "ftpred", "pfasst", 2, "predictor-phase failure-status allreduce",
    attempt_index=1,
)
FTSYNC = register(
    "ftsync", "pfasst", 3,
    "per-iteration failure-status + residual allreduce (block, attempt, k)",
    attempt_index=1,
)
FTWARM = register(
    "ftwarm", "pfasst", 3,
    "warm-restart coarse hand-off to a rebuilt rank (block, attempt, rank)",
    attempt_index=1,
)
FTROW = register(
    "ftrow", "pfasst", 2,
    "grid-recovery row-resync level-state bcast over a space row "
    "(block, attempt)",
    attempt_index=1,
)
RTOL = register(
    "rtol", "pfasst", 3, "residual early-exit allreduce (block, attempt, k)",
    attempt_index=1,
)
BLOCKEND = register(
    "blockend", "pfasst", 2, "block-chaining end-value bcast (block, attempt)",
    attempt_index=1,
)
PR_INIT = register(
    "init", "pfasst", 1, "parareal pipelined coarse prediction (sender rank)",
)
PR_ITER = register(
    "iter", "pfasst", 1, "parareal iteration hand-off (iteration k)",
)

# space-parallel tree evaluation (repro/tree/parallel.py + grid program)
SPACE_BRX = register(
    "space:brx", "space", None, "PEPC branch-node exchange ring allgather"
)
SPACE_RHS = register(
    "space:rhs", "space", None, "per-segment RHS allgather"
)
SPACE_DIGEST = register(
    "space:digest", "space", None, "cross-column end-value digest allgather"
)

# node-parallel sweeps (repro/sdc/sweeper.py evaluate_node_values + the
# 3D grid program) — the PFASST-ER per-node sub-comm traffic
NODE_F = register(
    "node:f", "node", None,
    "per-node-slice RHS allgather over the PFASST-ER node comm"
)
NODE_DIGEST = register(
    "node:digest", "node", None,
    "cross-node-rank end-value digest allgather"
)

# collective sub-phase defaults (repro/parallel/collectives.py) — callers
# usually pass their own base tag; these are the bare-call defaults and
# derived-phase heads, legitimately used from every subsystem
BCAST = register("_bcast", "collectives", None, shared=True)
REDUCE = register("_reduce", "collectives", None, shared=True)
ALLREDUCE = register("_allreduce", "collectives", None, shared=True)
GATHER = register("_gather", "collectives", None, shared=True)
SCATTER = register("_scatter", "collectives", None, shared=True)
ALLGATHER = register("_allgather", "collectives", None, shared=True)
BARRIER = register("_barrier", "collectives", None, shared=True)

# simulated-MPI infrastructure (repro/parallel/simmpi.py)
SPLIT = register(
    "_split", "simmpi", None, "MPI_Comm_split gather/bcast protocol",
    shared=True,
)
SUBCOMM = register(
    "sub", "simmpi", None,
    "SubComm tag-translation wrapper head: tags become (comm_id, tag) with "
    "comm_id = ('sub', seq, color)",
    shared=True,
)
FTEPOCH = register(
    "ftepoch", "simmpi", None,
    "EpochComm tag-translation wrapper head: tags become "
    "(('ftepoch', epoch), tag); bumping the epoch orphans in-flight "
    "traffic from an aborted recovery attempt",
    shared=True,
)


# ---------------------------------------------------------------------------
# tag introspection
# ---------------------------------------------------------------------------
def tag_head(tag: Hashable) -> Hashable:
    """First element of a tuple tag, or the tag itself when bare."""
    if isinstance(tag, tuple) and tag:
        return tag[0]
    return tag


def _unwrap(tag: Hashable) -> Hashable:
    """Strip SubComm/derived-phase wrapping down to the family tuple.

    On-the-wire forms this understands (recursively, so nested SubComms
    ``(comm_id, (comm_id, tag))`` unwrap fully):

    * ``(("sub", seq, color), inner_tag)`` — SubComm translation: the
      class lives in ``inner_tag``;
    * ``(("ftepoch", epoch), inner_tag)`` — EpochComm attempt stamping:
      the class lives in ``inner_tag``;
    * ``((base_tag, phase), component)`` — derived collective/split
      phases: the class lives in the nested head ``base_tag``;
    * ``("head", ...)`` / ``"head"`` — already a family form.
    """
    seen = 0
    while isinstance(tag, tuple) and tag:
        head = tag[0]
        if isinstance(head, tuple) and head:
            if head[0] in (SUBCOMM, FTEPOCH) and len(tag) >= 2:
                tag = tag[1]  # descend into the translated tag
            else:
                tag = head  # derived phase: class is in the nested head
        else:
            return tag
        seen += 1
        if seen > 64:  # malformed self-referential tag; bail out
            return tag
    return tag


def tag_class(tag: Hashable) -> Hashable:
    """The registered head a wire tag belongs to (grouping key).

    Unwraps nested SubComm translation and derived collective phases;
    returns the innermost head (a string for registered families, the
    raw value for unregistered tags).
    """
    return tag_head(_unwrap(tag))


def family_of(tag: Hashable) -> Optional[TagFamily]:
    """The :class:`TagFamily` of a wire tag, or ``None`` if unregistered."""
    return REGISTRY.family_of(tag_class(tag))


def attempt_of(tag: Hashable) -> Optional[Any]:
    """The PFASST restart-attempt component of a wire tag, if declared."""
    inner = _unwrap(tag)
    family = REGISTRY.family_of(tag_head(inner))
    if family is None or family.attempt_index is None:
        return None
    idx = family.attempt_index + 1
    if isinstance(inner, tuple) and len(inner) > idx:
        return inner[idx]
    return None
