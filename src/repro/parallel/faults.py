"""Deterministic fault injection for the simulated-MPI scheduler.

The paper's target regime — PFASST on 262k Blue Gene/P cores — is one
where hard faults (node loss) and soft faults (bit flips on the wire or
in memory) are the norm rather than the exception.  This module gives the
discrete-event scheduler (:mod:`repro.parallel.simmpi`) a *declarative*
fault model so that the space-time coupling of the solver can be studied
under failure, reproducibly:

* :class:`RankCrash` — a rank raises :class:`RankFailure` *into* its rank
  program at a virtual-time or operation-count trigger, modelling a node
  loss.  The program may catch it (algorithmic recovery, see
  ``pfasst/controller.py``) or let it propagate (the rank dies).
* :class:`MessageFault` — per-channel message loss, duplication, extra
  delay, or bit-level payload corruption on matching sends.
* :class:`FaultPlan` — a frozen bundle of the above plus a seed.  The
  plan is *pure data*: all pseudo-randomness is derived by hashing the
  ``(seed, rule, channel, occurrence)`` identity, never by drawing from a
  stateful RNG, so injected faults are identical under any scheduler
  service order — a requirement for the ``verify=True`` replay check.
* :class:`ResilienceReport` — every injected fault and every recovery
  action (retransmit, timeout, caught/uncaught crash) with its
  virtual-clock cost, collected per scheduler run.

With no plan installed the scheduler's fault hooks are never entered and
the run is byte-identical to the fault-free scheduler.

Because every injection decision is a pure hash of message/op *identity*
(never of wall-clock or scheduler state), fault plans are also
independent of the execution backend (:mod:`repro.parallel.executor`):
the same plan injects the same faults at the same virtual times whether
compute payloads run inline or on a process pool — the executor
byte-identity suite pins a faulty recovered run across backends.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "RankCrash",
    "MessageFault",
    "FaultPlan",
    "FaultEvent",
    "ResilienceReport",
    "RankFailure",
    "RecvTimeout",
    "CorruptionError",
    "payload_checksum",
    "corrupt_payload",
    "CorruptedPayload",
    "MESSAGE_FAULT_KINDS",
]

MESSAGE_FAULT_KINDS = ("drop", "duplicate", "delay", "corrupt")


# ---------------------------------------------------------------------------
# exceptions
# ---------------------------------------------------------------------------
class RankFailure(RuntimeError):
    """A simulated hard fault: the rank's node died.

    Thrown *into* the rank program's generator at an operation boundary.
    Catching it models a replacement rank taking over (with all local
    state lost); letting it propagate kills the rank, and the scheduler
    re-raises at the end of the run (or at the deadlock it provokes).
    """

    def __init__(self, rank: int, time: float, detail: str = "") -> None:
        msg = f"rank {rank} crashed at virtual time {time:.9g}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.rank = rank
        self.time = time


class RecvTimeout(RuntimeError):
    """A receive with ``timeout=`` expired without a deliverable message.

    Thrown into the receiving rank program; the waiting cost has already
    been charged to its virtual clock.
    """

    def __init__(
        self, rank: int, source: int, tag: Hashable, time: float
    ) -> None:
        super().__init__(
            f"rank {rank} timed out waiting for rank {source}, "
            f"tag={tag!r}, at virtual time {time:.9g}"
        )
        self.rank = rank
        self.source = source
        self.tag = tag
        self.time = time


class CorruptionError(RuntimeError):
    """A corrupted payload was detected and retransmission was exhausted."""

    def __init__(
        self, rank: int, source: int, tag: Hashable, time: float, detail: str
    ) -> None:
        super().__init__(
            f"corrupted payload detected at receive boundary: "
            f"rank {rank} <- rank {source}, tag={tag!r}, "
            f"virtual time {time:.9g}; {detail}"
        )
        self.rank = rank
        self.source = source
        self.tag = tag
        self.time = time


# ---------------------------------------------------------------------------
# order-independent pseudo-randomness
# ---------------------------------------------------------------------------
def _stable_unit(*key: Any) -> float:
    """Deterministic uniform variate in [0, 1) from a hashable key.

    Hash-derived rather than drawn from a stateful RNG so the value a
    message receives depends only on the message's *identity* (seed,
    rule, channel, occurrence), never on the order in which the
    scheduler happens to process channels — replay verification reverses
    that order and must see identical faults.
    """
    blob = repr(key).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


# ---------------------------------------------------------------------------
# payload checksum / corruption
# ---------------------------------------------------------------------------
def payload_checksum(payload: Any) -> int:
    """CRC32 over the canonical byte serialisation of a payload.

    Uses :func:`repro.analysis.commcheck.freeze`, so ndarrays are
    checksummed bit-exactly (dtype, shape and raw bytes) — a single
    flipped mantissa bit changes the checksum.
    """
    from repro.analysis.commcheck import freeze

    return zlib.crc32(freeze(payload))


@dataclass(frozen=True)
class CorruptedPayload:
    """Replacement payload for objects with no byte-level representation."""

    original_type: str


def corrupt_payload(payload: Any, key: Tuple[Any, ...]) -> Any:
    """Return a deterministically bit-corrupted copy of ``payload``.

    Float arrays and scalars get a single bit flip at a hash-chosen
    (element, bit) position — the classic silent-data-corruption model,
    which may produce anything from a last-place perturbation to a
    NaN/Inf.  Byte strings get one flipped bit; other objects are
    replaced by a :class:`CorruptedPayload` marker (detected via the
    checksum either way).
    """
    if isinstance(payload, np.ndarray) and payload.dtype.kind == "f":
        arr = np.ascontiguousarray(payload).copy()
        if arr.size:
            flat = arr.reshape(-1).view(np.uint64)
            idx = int(_stable_unit("elem", *key) * flat.size) % flat.size
            bit = int(_stable_unit("bit", *key) * 64) % 64
            flat[idx] ^= np.uint64(1) << np.uint64(bit)
        return arr
    if isinstance(payload, float):
        (bits,) = struct.unpack("<Q", struct.pack("<d", payload))
        bit = int(_stable_unit("bit", *key) * 64) % 64
        return struct.unpack("<d", struct.pack("<Q", bits ^ (1 << bit)))[0]
    if isinstance(payload, (bytes, bytearray)) and len(payload):
        data = bytearray(payload)
        idx = int(_stable_unit("byte", *key) * len(data)) % len(data)
        data[idx] ^= 1 << (int(_stable_unit("bit", *key) * 8) % 8)
        return bytes(data)
    if isinstance(payload, int) and not isinstance(payload, bool):
        bit = int(_stable_unit("bit", *key) * 16) % 16
        return payload ^ (1 << bit)
    return CorruptedPayload(original_type=type(payload).__name__)


# ---------------------------------------------------------------------------
# declarative fault rules
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RankCrash:
    """Crash rule: rank ``rank`` fails once a trigger is reached.

    Exactly one of the triggers must be given:

    ``after_ops``
        Fire when the rank has yielded this many operations (sends,
        receives, work and annotate ops all count).  Operation counts
        are schedule-independent, so this trigger is safe under replay
        verification.
    ``at_time``
        Fire when the rank's virtual clock reaches this value (checked
        at operation boundaries).  Deterministic only with
        ``measure_compute=False`` (modelled clocks).

    The failure fires at most once; after a program catches it, the rank
    continues as its own replacement.
    """

    rank: int
    after_ops: Optional[int] = None
    at_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if (self.after_ops is None) == (self.at_time is None):
            raise ValueError(
                "exactly one of after_ops / at_time must be given"
            )
        if self.after_ops is not None and self.after_ops < 1:
            raise ValueError(f"after_ops must be >= 1, got {self.after_ops}")
        if self.at_time is not None and self.at_time < 0:
            raise ValueError(f"at_time must be >= 0, got {self.at_time}")


@dataclass(frozen=True)
class MessageFault:
    """Message fault rule applied to matching sends.

    Parameters
    ----------
    kind :
        ``"drop"`` (message never delivered; a pristine copy is kept for
        link-layer retransmission), ``"duplicate"`` (delivered twice),
        ``"delay"`` (arrival postponed by ``delay`` seconds) or
        ``"corrupt"`` (payload bit-flipped; pristine copy + checksum
        kept so the receive boundary can detect and repair it).
    source, dest, tag :
        Channel filter; ``None`` matches anything.  Tags are compared
        for equality (PFASST tags are tuples like ``("lvl", block, lev,
        k)``).
    occurrences :
        Indices of matching messages to hit, counted per ``(source,
        dest, tag)`` channel in FIFO order; ``None`` hits every match.
    probability :
        Keep only this fraction of selected messages, decided by an
        order-independent hash of the message identity and the plan
        seed (1.0 = always).
    delay :
        Extra arrival delay in seconds, ``kind="delay"`` only.
    """

    kind: str
    source: Optional[int] = None
    dest: Optional[int] = None
    tag: Optional[Hashable] = None
    occurrences: Optional[Tuple[int, ...]] = None
    probability: float = 1.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {MESSAGE_FAULT_KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.kind == "delay" and self.delay == 0.0:
            raise ValueError('kind="delay" needs a positive delay')
        if self.kind != "delay" and self.delay != 0.0:
            raise ValueError(f'delay is only meaningful for kind="delay"')
        if self.occurrences is not None:
            occ = tuple(int(i) for i in self.occurrences)
            if any(i < 0 for i in occ):
                raise ValueError(f"occurrences must be >= 0, got {occ}")
            object.__setattr__(self, "occurrences", occ)

    def matches(self, source: int, dest: int, tag: Hashable) -> bool:
        return (
            (self.source is None or self.source == source)
            and (self.dest is None or self.dest == dest)
            and (self.tag is None or self.tag == tag)
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative set of faults for one scheduler run.

    Passive data: the scheduler instantiates a fresh runtime consumer
    per run (so scheduler reuse and replay verification see identical
    injections).
    """

    crashes: Tuple[RankCrash, ...] = ()
    messages: Tuple[MessageFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "messages", tuple(self.messages))

    @property
    def empty(self) -> bool:
        return not self.crashes and not self.messages


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or recovery action on the virtual timeline."""

    kind: str
    time: float
    rank: Optional[int] = None
    source: Optional[int] = None
    dest: Optional[int] = None
    tag: Optional[Hashable] = None
    detail: str = ""
    #: virtual-clock seconds charged to the affected rank by recovery
    cost: float = 0.0

    def render(self) -> str:
        parts = [f"[t={self.time:.9g}] {self.kind}"]
        if self.rank is not None:
            parts.append(f"rank={self.rank}")
        if self.source is not None or self.dest is not None:
            parts.append(f"channel={self.source}->{self.dest}")
        if self.tag is not None:
            parts.append(f"tag={self.tag!r}")
        if self.cost:
            parts.append(f"cost={self.cost:.9g}s")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (tag tuples become nested lists)."""
        return {
            "kind": self.kind,
            "time": self.time,
            "rank": self.rank,
            "source": self.source,
            "dest": self.dest,
            "tag": _jsonify_tag(self.tag),
            "detail": self.detail,
            "cost": self.cost,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(
            kind=data["kind"],
            time=float(data["time"]),
            rank=data.get("rank"),
            source=data.get("source"),
            dest=data.get("dest"),
            tag=_tuplify_tag(data.get("tag")),
            detail=data.get("detail", ""),
            cost=float(data.get("cost", 0.0)),
        )


def _jsonify_tag(tag: Any) -> Any:
    """Tuples to lists, recursively — the JSON image of a wire tag."""
    if isinstance(tag, tuple):
        return [_jsonify_tag(t) for t in tag]
    return tag


def _tuplify_tag(tag: Any) -> Any:
    """Inverse of :func:`_jsonify_tag`: lists back to tuples."""
    if isinstance(tag, list):
        return tuple(_tuplify_tag(t) for t in tag)
    return tag


@dataclass
class ResilienceReport:
    """Everything the fault layer did during one scheduler run.

    ``injected`` holds the faults the plan fired (crashes, drops,
    duplicates, delays, corruptions); ``recovered`` holds the recovery
    actions taken (retransmits, expired timeouts, caught/uncaught
    crashes, pool respawns) with the virtual-clock cost each one
    charged.  ``rule_activations`` maps every rule of the fault plan —
    in plan order, crashes first — to how many times it actually fired,
    so rules that never matched anything are visible as zero rows
    instead of silently doing nothing.
    """

    injected: List[FaultEvent] = field(default_factory=list)
    recovered: List[FaultEvent] = field(default_factory=list)
    rule_activations: List[Dict[str, Any]] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.injected + self.recovered:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    @property
    def recovery_cost(self) -> float:
        """Total virtual-clock seconds charged by recovery actions."""
        return float(sum(ev.cost for ev in self.recovered))

    def summary(self) -> str:
        if (not self.injected and not self.recovered
                and not self.rule_activations):
            return "resilience report: no faults injected, no recovery needed"
        lines = [
            f"resilience report: {len(self.injected)} fault(s) injected, "
            f"{len(self.recovered)} recovery action(s), "
            f"total recovery cost {self.recovery_cost:.9g}s"
        ]
        for ev in self.injected:
            lines.append("  injected:  " + ev.render())
        for ev in self.recovered:
            lines.append("  recovered: " + ev.render())
        dormant = [r for r in self.rule_activations
                   if r["activations"] == 0]
        for row in dormant:
            lines.append(
                f"  dormant:   {row['rule']} never fired ({row['describe']})"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable image, invertible via :meth:`from_dict`.

        ``json.dumps(report.to_dict())`` round-trips: wire tags (nested
        tuples) are stored as nested lists and converted back on load.
        """
        return {
            "injected": [ev.to_dict() for ev in self.injected],
            "recovered": [ev.to_dict() for ev in self.recovered],
            "rule_activations": [dict(r) for r in self.rule_activations],
            "counts": self.counts(),
            "recovery_cost": self.recovery_cost,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResilienceReport":
        return cls(
            injected=[FaultEvent.from_dict(d) for d in data["injected"]],
            recovered=[FaultEvent.from_dict(d) for d in data["recovered"]],
            rule_activations=[dict(r) for r in
                              data.get("rule_activations", [])],
        )


# ---------------------------------------------------------------------------
# per-run consumer
# ---------------------------------------------------------------------------
@dataclass
class SendDisposition:
    """What the fault layer decided for one send."""

    drop: bool = False
    corrupt: bool = False
    extra_delay: float = 0.0
    duplicates: int = 0
    #: identity key for deterministic corruption bit choice
    key: Tuple[Any, ...] = ()

    @property
    def clean(self) -> bool:
        return (
            not self.drop
            and not self.corrupt
            and self.extra_delay == 0.0
            and self.duplicates == 0
        )


class FaultRuntime:
    """Mutable per-run consumer of a :class:`FaultPlan`.

    Tracks which crash rules have fired and, per ``(rule, channel)``,
    how many matching messages have been seen — the occurrence counters
    are per channel so they are independent of the order in which the
    scheduler interleaves different channels.
    """

    def __init__(self, plan: FaultPlan, report: ResilienceReport) -> None:
        self.plan = plan
        self.report = report
        self._fired_crashes: set = set()
        self._match_counts: Dict[Tuple[int, int, int, Hashable], int] = {}
        #: message-rule index -> number of sends the rule actually altered
        #: (passed the occurrence and probability gates, not just matched)
        self._rule_hits: Dict[int, int] = {}

    def activation_summary(self) -> List[Dict[str, Any]]:
        """Per-rule activation counts, in plan order (crashes first).

        Rules with ``activations == 0`` never fired — usually a trigger
        that the run never reached (an ``after_ops`` past program exit, a
        channel that carries no traffic) and worth surfacing instead of
        silently doing nothing.
        """
        rows: List[Dict[str, Any]] = []
        for i, rule in enumerate(self.plan.crashes):
            trigger = (f"after_ops={rule.after_ops}"
                       if rule.after_ops is not None
                       else f"at_time={rule.at_time}")
            rows.append({
                "rule": f"crash[{i}]",
                "kind": "crash",
                "describe": f"rank={rule.rank} {trigger}",
                "activations": 1 if i in self._fired_crashes else 0,
            })
        for i, rule in enumerate(self.plan.messages):
            rows.append({
                "rule": f"message[{i}]",
                "kind": rule.kind,
                "describe": (
                    f"source={rule.source} dest={rule.dest} "
                    f"tag={_jsonify_tag(rule.tag)!r} "
                    f"occurrences={rule.occurrences} "
                    f"probability={rule.probability}"
                ),
                "activations": self._rule_hits.get(i, 0),
            })
        return rows

    # -- crashes --------------------------------------------------------
    def crash_due(
        self, rank: int, ops_done: int, clock: float
    ) -> Optional[RankCrash]:
        """First unfired crash rule for ``rank`` whose trigger is reached."""
        for i, rule in enumerate(self.plan.crashes):
            if i in self._fired_crashes or rule.rank != rank:
                continue
            due = (
                rule.after_ops is not None and ops_done >= rule.after_ops
            ) or (rule.at_time is not None and clock >= rule.at_time)
            if due:
                self._fired_crashes.add(i)
                return rule
        return None

    # -- messages -------------------------------------------------------
    def on_send(
        self, source: int, dest: int, tag: Hashable
    ) -> SendDisposition:
        """Fold every matching rule into one disposition for this send."""
        disp = SendDisposition()
        for i, rule in enumerate(self.plan.messages):
            if not rule.matches(source, dest, tag):
                continue
            counter_key = (i, source, dest, tag)
            occ = self._match_counts.get(counter_key, 0)
            self._match_counts[counter_key] = occ + 1
            if rule.occurrences is not None and occ not in rule.occurrences:
                continue
            if rule.probability < 1.0:
                draw = _stable_unit(
                    self.plan.seed, i, source, dest, tag, occ
                )
                if draw >= rule.probability:
                    continue
            disp.key = (self.plan.seed, i, source, dest, tag, occ)
            self._rule_hits[i] = self._rule_hits.get(i, 0) + 1
            if rule.kind == "drop":
                disp.drop = True
            elif rule.kind == "duplicate":
                disp.duplicates += 1
            elif rule.kind == "delay":
                disp.extra_delay += rule.delay
            elif rule.kind == "corrupt":
                disp.corrupt = True
        return disp
