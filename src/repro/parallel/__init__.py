"""Deterministic simulated MPI: scheduler, collectives, faults, topology."""

from repro.parallel.simmpi import (
    CommCostModel,
    Scheduler,
    VirtualComm,
    Send,
    Recv,
    Work,
    DeadlockError,
    OrphanMessageWarning,
    payload_bytes,
)
from repro.parallel.collectives import (
    bcast,
    reduce,
    allreduce,
    gather,
    scatter,
    barrier,
)
from repro.parallel.faults import (
    FaultPlan,
    RankCrash,
    MessageFault,
    FaultEvent,
    ResilienceReport,
    RankFailure,
    RecvTimeout,
    CorruptionError,
    payload_checksum,
    corrupt_payload,
)
from repro.parallel.topology import SpaceTimeGrid

__all__ = [
    "CommCostModel",
    "Scheduler",
    "VirtualComm",
    "Send",
    "Recv",
    "Work",
    "DeadlockError",
    "OrphanMessageWarning",
    "payload_bytes",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "barrier",
    "FaultPlan",
    "RankCrash",
    "MessageFault",
    "FaultEvent",
    "ResilienceReport",
    "RankFailure",
    "RecvTimeout",
    "CorruptionError",
    "payload_checksum",
    "corrupt_payload",
    "SpaceTimeGrid",
]
