"""Collective operations for simulated-MPI rank programs.

Implemented on top of point-to-point messages with binomial-tree schedules,
so their virtual-time cost scales like ``O(log P)`` — matching how real MPI
implementations behave on the machines the paper targets.  ``allgather``
uses the classic ring schedule (P-1 neighbour exchanges), the same
communication pattern PEPC uses for its branch-node exchange.

All helpers are generator functions used with ``yield from`` inside a rank
program::

    value = yield from bcast(comm, value, root=0)
    total = yield from allreduce(comm, my_part, op=operator.add)

Every collective threads the ``timeout`` / ``retries`` / ``backoff``
recovery kwargs into its receive legs, so a collective over a lossy link
(fault-injected drops or corruption) recovers by bounded link-layer
retransmission instead of hanging — see :mod:`repro.parallel.faults`.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Generator, List, Optional

from repro.parallel import tags
from repro.parallel.simmpi import VirtualComm

__all__ = ["bcast", "reduce", "allreduce", "gather", "scatter", "allgather",
           "barrier"]


def _vrank(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _arank(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def bcast(
    comm: VirtualComm,
    value: Any,
    root: int = 0,
    tag: str = tags.BCAST,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.0,
) -> Generator[Any, Any, Any]:
    """Binomial-tree broadcast; returns the root's value on every rank."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return value
    me = _vrank(rank, root, size)
    mask = 1
    # find the bit at which this rank receives
    while mask < size:
        if me & mask:
            value = yield comm.recv(
                _arank(me - mask, root, size), (tag, mask),
                timeout=timeout, retries=retries, backoff=backoff,
            )
            break
        mask <<= 1
    # forward to higher vranks
    child_mask = mask >> 1 if me else _highest_bit(size)
    mask = child_mask
    while mask >= 1:
        peer = me + mask
        if peer < size:
            yield comm.send(_arank(peer, root, size), (tag, mask), value)
        mask >>= 1
    return value


def _highest_bit(size: int) -> int:
    mask = 1
    while mask < size:
        mask <<= 1
    return mask >> 1 if mask >= size else mask


def reduce(
    comm: VirtualComm,
    value: Any,
    op: Callable[[Any, Any], Any] = operator.add,
    root: int = 0,
    tag: str = tags.REDUCE,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.0,
) -> Generator[Any, Any, Optional[Any]]:
    """Binomial-tree reduction; only the root returns the combined value."""
    size, rank = comm.size, comm.rank
    me = _vrank(rank, root, size)
    mask = 1
    while mask < size:
        if me & mask:
            yield comm.send(_arank(me - mask, root, size), (tag, mask), value)
            return None
        peer = me + mask
        if peer < size:
            other = yield comm.recv(
                _arank(peer, root, size), (tag, mask),
                timeout=timeout, retries=retries, backoff=backoff,
            )
            value = op(value, other)
        mask <<= 1
    return value


def allreduce(
    comm: VirtualComm,
    value: Any,
    op: Callable[[Any, Any], Any] = operator.add,
    tag: Any = tags.ALLREDUCE,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.0,
) -> Generator[Any, Any, Any]:
    """Reduce to rank 0, then broadcast the result (cost ~ 2 log P).

    ``tag`` may be any hashable (tuples included); sub-phases derive
    distinct tags from it.
    """
    reduced = yield from reduce(
        comm, value, op=op, root=0, tag=(tag, "r"),
        timeout=timeout, retries=retries, backoff=backoff,
    )
    return (yield from bcast(
        comm, reduced, root=0, tag=(tag, "b"),
        timeout=timeout, retries=retries, backoff=backoff,
    ))


def gather(
    comm: VirtualComm,
    value: Any,
    root: int = 0,
    tag: str = tags.GATHER,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.0,
) -> Generator[Any, Any, Optional[List[Any]]]:
    """Gather one value per rank into a list at the root (flat schedule)."""
    size, rank = comm.size, comm.rank
    if rank == root:
        out: List[Any] = [None] * size
        out[root] = value
        for src in range(size):
            if src != root:
                out[src] = yield comm.recv(
                    src, (tag, src),
                    timeout=timeout, retries=retries, backoff=backoff,
                )
        return out
    yield comm.send(root, (tag, rank), value)
    return None


def scatter(
    comm: VirtualComm,
    values: Optional[List[Any]],
    root: int = 0,
    tag: str = tags.SCATTER,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.0,
) -> Generator[Any, Any, Any]:
    """Scatter a list from the root; each rank returns its element."""
    size, rank = comm.size, comm.rank
    if rank == root:
        if values is None or len(values) != size:
            raise ValueError(
                f"root must pass exactly {size} values, got "
                f"{None if values is None else len(values)}"
            )
        for dest in range(size):
            if dest != root:
                yield comm.send(dest, (tag, dest), values[dest])
        return values[root]
    return (yield from _recv_one(
        comm, root, (tag, rank),
        timeout=timeout, retries=retries, backoff=backoff,
    ))


def _recv_one(
    comm: VirtualComm,
    src: int,
    tag: Any,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.0,
) -> Generator[Any, Any, Any]:
    value = yield comm.recv(
        src, tag, timeout=timeout, retries=retries, backoff=backoff
    )
    return value


def allgather(
    comm: VirtualComm,
    value: Any,
    tag: str = tags.ALLGATHER,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.0,
) -> Generator[Any, Any, List[Any]]:
    """Ring allgather: every rank returns ``[value_0, ..., value_{P-1}]``.

    P-1 rounds; in round ``k`` each rank forwards to its right neighbour
    the value it received in round ``k-1`` (its own in round 0), so each
    contribution travels around the ring exactly once.  This is the
    neighbour-exchange pattern of PEPC's branch-node exchange (paper
    Sec. III-A) and costs ``O(P)`` latency but only ``2 (P-1) / P`` of
    the total payload per link — cheaper than gather+bcast for the large
    branch payloads it carries here.
    """
    size, rank = comm.size, comm.rank
    out: List[Any] = [None] * size
    out[rank] = value
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    cur = value
    for step in range(size - 1):
        yield comm.send(right, (tag, step), cur)
        cur = yield comm.recv(
            left, (tag, step),
            timeout=timeout, retries=retries, backoff=backoff,
        )
        out[(rank - step - 1) % size] = cur
    return out


def barrier(
    comm: VirtualComm,
    tag: str = tags.BARRIER,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.0,
) -> Generator[Any, Any, None]:
    """Synchronise all ranks (allreduce of a token)."""
    yield from allreduce(
        comm, 0, tag=tag, timeout=timeout, retries=retries, backoff=backoff
    )
    return None
