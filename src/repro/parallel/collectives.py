"""Collective operations for simulated-MPI rank programs.

Implemented on top of point-to-point messages with binomial-tree schedules,
so their virtual-time cost scales like ``O(log P)`` — matching how real MPI
implementations behave on the machines the paper targets.

All helpers are generator functions used with ``yield from`` inside a rank
program::

    value = yield from bcast(comm, value, root=0)
    total = yield from allreduce(comm, my_part, op=operator.add)
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Generator, List, Optional

from repro.parallel.simmpi import VirtualComm

__all__ = ["bcast", "reduce", "allreduce", "gather", "scatter", "barrier"]


def _vrank(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _arank(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def bcast(
    comm: VirtualComm,
    value: Any,
    root: int = 0,
    tag: str = "_bcast",
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.0,
) -> Generator[Any, Any, Any]:
    """Binomial-tree broadcast; returns the root's value on every rank.

    ``timeout`` / ``retries`` / ``backoff`` are threaded into the
    receive leg so a broadcast over a lossy link (fault-injected drops
    or corruption) recovers by bounded link-layer retransmission — see
    :mod:`repro.parallel.faults`.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return value
    me = _vrank(rank, root, size)
    mask = 1
    # find the bit at which this rank receives
    while mask < size:
        if me & mask:
            value = yield comm.recv(
                _arank(me - mask, root, size), (tag, mask),
                timeout=timeout, retries=retries, backoff=backoff,
            )
            break
        mask <<= 1
    # forward to higher vranks
    child_mask = mask >> 1 if me else _highest_bit(size)
    mask = child_mask
    while mask >= 1:
        peer = me + mask
        if peer < size:
            yield comm.send(_arank(peer, root, size), (tag, mask), value)
        mask >>= 1
    return value


def _highest_bit(size: int) -> int:
    mask = 1
    while mask < size:
        mask <<= 1
    return mask >> 1 if mask >= size else mask


def reduce(
    comm: VirtualComm,
    value: Any,
    op: Callable[[Any, Any], Any] = operator.add,
    root: int = 0,
    tag: str = "_reduce",
) -> Generator[Any, Any, Optional[Any]]:
    """Binomial-tree reduction; only the root returns the combined value."""
    size, rank = comm.size, comm.rank
    me = _vrank(rank, root, size)
    mask = 1
    while mask < size:
        if me & mask:
            yield comm.send(_arank(me - mask, root, size), (tag, mask), value)
            return None
        peer = me + mask
        if peer < size:
            other = yield comm.recv(_arank(peer, root, size), (tag, mask))
            value = op(value, other)
        mask <<= 1
    return value


def allreduce(
    comm: VirtualComm,
    value: Any,
    op: Callable[[Any, Any], Any] = operator.add,
    tag: Any = "_allreduce",
) -> Generator[Any, Any, Any]:
    """Reduce to rank 0, then broadcast the result (cost ~ 2 log P).

    ``tag`` may be any hashable (tuples included); sub-phases derive
    distinct tags from it.
    """
    reduced = yield from reduce(comm, value, op=op, root=0, tag=(tag, "r"))
    return (yield from bcast(comm, reduced, root=0, tag=(tag, "b")))


def gather(
    comm: VirtualComm, value: Any, root: int = 0, tag: str = "_gather"
) -> Generator[Any, Any, Optional[List[Any]]]:
    """Gather one value per rank into a list at the root (flat schedule)."""
    size, rank = comm.size, comm.rank
    if rank == root:
        out: List[Any] = [None] * size
        out[root] = value
        for src in range(size):
            if src != root:
                out[src] = yield comm.recv(src, (tag, src))
        return out
    yield comm.send(root, (tag, rank), value)
    return None


def scatter(
    comm: VirtualComm,
    values: Optional[List[Any]],
    root: int = 0,
    tag: str = "_scatter",
) -> Generator[Any, Any, Any]:
    """Scatter a list from the root; each rank returns its element."""
    size, rank = comm.size, comm.rank
    if rank == root:
        if values is None or len(values) != size:
            raise ValueError(
                f"root must pass exactly {size} values, got "
                f"{None if values is None else len(values)}"
            )
        for dest in range(size):
            if dest != root:
                yield comm.send(dest, (tag, dest), values[dest])
        return values[root]
    return (yield from (_recv_one(comm, root, (tag, rank))))


def _recv_one(comm: VirtualComm, src: int, tag: Any) -> Generator[Any, Any, Any]:
    value = yield comm.recv(src, tag)
    return value


def barrier(comm: VirtualComm, tag: str = "_barrier") -> Generator[Any, Any, None]:
    """Synchronise all ranks (allreduce of a token)."""
    yield from allreduce(comm, 0, tag=tag)
    return None
