"""Seeded chaos campaigns: randomized fault soak over the P_T x P_S grid.

The unit suites pin *specific* failure scenarios (one crash at one op
count).  This module complements them with randomized-but-reproducible
*campaigns*: every trial derives its crash site, trigger, recovery
policy and executor from a counter-keyed RNG, runs a short PFASST
problem on the space-time grid, and classifies the outcome against a
fault-free baseline.  Campaigns are pure functions of ``(config, seed)``
— re-running one replays the identical fault sequence, so a campaign
failure is a reproducible bug report, not a flake.

Outcome classes:

``recovered``
    the run survived its injected faults (or was killed and resumed from
    a durable checkpoint) and reached the fault-free end state.
``converged-differs``
    the run survived but its end state differs from the baseline — a
    recovery-correctness bug; campaigns fail on any occurrence.
``fatal-protocol``
    the crash landed inside a recovery collective (the documented
    unrecoverable window) and the run aborted with a protocol error.
``exhausted``
    recovery gave up after ``max_restarts`` attempts.
``rank-death``
    a :class:`~repro.parallel.faults.RankFailure` propagated (expected
    when the trial runs with ``recovery="fail"``).
``error``
    any other exception — campaigns fail on any occurrence.

Run ``python -m repro.parallel.chaos --smoke`` for the CI-sized soak.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.executor import ProcessExecutor, SerialExecutor
from repro.parallel.faults import FaultPlan, RankCrash, RankFailure
from repro.pfasst.controller import PfasstConfig, run_pfasst
from repro.pfasst.level import LevelSpec
from repro.vortex.problem import ODEProblem

__all__ = [
    "ChaosODE",
    "CampaignConfig",
    "TrialResult",
    "CampaignReport",
    "run_campaign",
    "main",
]


class ChaosODE(ODEProblem):
    """Small linear system u' = A u (module-level, hence picklable)."""

    def __init__(self) -> None:
        self.matrix = np.array([[0.0, 1.0], [-4.0, -0.4]])

    def rhs(self, t: float, u: np.ndarray) -> np.ndarray:
        return self.matrix @ u


def _specs(problem: ODEProblem) -> List[LevelSpec]:
    return [
        LevelSpec(problem, num_nodes=3, sweeps=1),
        LevelSpec(problem, num_nodes=2, sweeps=2),
    ]


def _config(**kw: Any) -> PfasstConfig:
    kw.setdefault("t0", 0.0)
    kw.setdefault("t_end", 1.0)
    kw.setdefault("n_steps", 4)
    kw.setdefault("iterations", 30)
    kw.setdefault("residual_tol", 1e-11)
    return PfasstConfig(**kw)


@dataclass(frozen=True)
class CampaignConfig:
    """A reproducible chaos campaign over the space-time grid."""

    seed: int = 0
    trials: int = 8
    p_time: int = 2
    p_space: int = 2
    executors: Tuple[str, ...] = ("serial",)
    #: every Nth trial is a kill-mid-run + checkpoint-resume trial
    #: instead of an in-run recovery trial (0 disables them)
    kill_resume_every: int = 4
    recovery_timeout: float = 2e-4
    max_workers: int = 2

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        bad = [e for e in self.executors if e not in ("serial", "process")]
        if bad:
            raise ValueError(
                f"unknown executor(s) {bad}; choose from 'serial', 'process'"
            )
        if self.kill_resume_every < 0:
            raise ValueError("kill_resume_every must be >= 0")


@dataclass
class TrialResult:
    trial: int
    executor: str
    kind: str  # "crash" | "kill-resume"
    policy: str
    crash_rank: int
    after_ops: int
    outcome: str
    recoveries: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class CampaignReport:
    config: Dict[str, Any]
    trials: List[TrialResult] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for t in self.trials:
            out[t.outcome] = out.get(t.outcome, 0) + 1
        return out

    @property
    def ok(self) -> bool:
        """No correctness bug surfaced (aborted windows are expected)."""
        bad = ("converged-differs", "error")
        return not any(t.outcome in bad for t in self.trials)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config,
            "counts": self.counts(),
            "ok": self.ok,
            "trials": [t.to_dict() for t in self.trials],
        }

    def summary(self) -> str:
        lines = [
            "chaos campaign: "
            f"{len(self.trials)} trial(s), seed {self.config.get('seed')}, "
            f"grid {self.config.get('p_time')}x{self.config.get('p_space')}"
        ]
        for name, n in sorted(self.counts().items()):
            lines.append(f"  {name:18s} {n}")
        for t in self.trials:
            if t.outcome in ("converged-differs", "error"):
                lines.append(
                    f"  FAIL trial {t.trial} [{t.executor}/{t.kind}/"
                    f"{t.policy}] rank={t.crash_rank} ops={t.after_ops}: "
                    f"{t.outcome} — {t.detail}"
                )
        lines.append("  verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def _classify(exc: BaseException) -> Tuple[str, str]:
    if isinstance(exc, RankFailure):
        return "rank-death", str(exc)
    if isinstance(exc, RuntimeError):
        text = str(exc)
        if "gave up" in text:
            return "exhausted", text
        if "protocol" in text:
            return "fatal-protocol", text
    return "error", f"{type(exc).__name__}: {exc}"


def run_campaign(cfg: CampaignConfig) -> CampaignReport:
    """Execute a campaign; deterministic in ``cfg`` (seed included)."""
    problem = ChaosODE()
    u0 = np.array([1.0, 2.0])
    world = cfg.p_time * cfg.p_space
    report = CampaignReport(config=dict(
        seed=cfg.seed, trials=cfg.trials, p_time=cfg.p_time,
        p_space=cfg.p_space, executors=list(cfg.executors),
        kill_resume_every=cfg.kill_resume_every,
    ))

    def _run(executor_name: str, **kw: Any):
        if executor_name == "process":
            with ProcessExecutor(max_workers=cfg.max_workers) as ex:
                return run_pfasst(
                    specs=_specs(problem), u0=u0, p_time=cfg.p_time,
                    p_space=cfg.p_space, executor=ex, **kw,
                )
        executor = SerialExecutor() if executor_name == "serial" else None
        return run_pfasst(
            specs=_specs(problem), u0=u0, p_time=cfg.p_time,
            p_space=cfg.p_space, executor=executor, **kw,
        )

    baselines = {
        name: _run(name, config=_config()) for name in cfg.executors
    }

    for trial in range(cfg.trials):
        executor_name = cfg.executors[trial % len(cfg.executors)]
        base = baselines[executor_name]
        rng = np.random.default_rng([cfg.seed, trial])
        crash_rank = int(rng.integers(0, world))
        after_ops = int(rng.integers(8, 64))
        policy = ("cold-restart", "warm-restart")[int(rng.integers(0, 2))]
        plan = FaultPlan(
            crashes=[RankCrash(rank=crash_rank, after_ops=after_ops)],
            seed=cfg.seed * 1000 + trial,
        )
        kill_resume = (
            cfg.kill_resume_every > 0
            and trial % max(cfg.kill_resume_every, 1)
            == cfg.kill_resume_every - 1
        )
        if kill_resume:
            result = _kill_resume_trial(
                trial, executor_name, plan, crash_rank, after_ops, base, _run
            )
        else:
            result = _crash_trial(
                trial, executor_name, plan, crash_rank, after_ops, policy,
                base, cfg, _run,
            )
        report.trials.append(result)
    return report


def _matches(res: Any, base: Any, exact: bool) -> bool:
    if exact:
        return bool(np.array_equal(res.u_end, base.u_end))
    # in-run recovery re-converges to the residual tolerance, not to the
    # bit: apply the same 10x-residual-tol contract as the unit suite
    return bool(np.allclose(res.u_end, base.u_end, rtol=0.0, atol=1e-10))


def _crash_trial(
    trial, executor_name, plan, crash_rank, after_ops, policy, base, cfg,
    _run,
) -> TrialResult:
    tr = TrialResult(
        trial=trial, executor=executor_name, kind="crash", policy=policy,
        crash_rank=crash_rank, after_ops=after_ops, outcome="",
    )
    try:
        res = _run(
            executor_name,
            config=_config(
                recovery=policy, recovery_timeout=cfg.recovery_timeout
            ),
            fault_plan=plan,
        )
    except BaseException as exc:  # noqa: BLE001 — classified, not hidden
        tr.outcome, tr.detail = _classify(exc)
        return tr
    tr.recoveries = len(res.recoveries)
    if _matches(res, base, exact=False):
        tr.outcome = "recovered"
    else:
        tr.outcome = "converged-differs"
        tr.detail = (
            f"u_end={res.u_end!r} expected {base.u_end!r} after "
            f"{tr.recoveries} recover(ies)"
        )
    return tr


def _kill_resume_trial(
    trial, executor_name, plan, crash_rank, after_ops, base, _run
) -> TrialResult:
    """Kill a checkpointing run mid-flight, resume it, compare bitwise."""
    tr = TrialResult(
        trial=trial, executor=executor_name, kind="kill-resume",
        policy="fail", crash_rank=crash_rank, after_ops=after_ops,
        outcome="",
    )
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = pathlib.Path(tmp) / "chaos.ckpt"
        try:
            _run(
                executor_name, config=_config(), fault_plan=plan,
                checkpoint=ckpt,
            )
            # the crash never fired (op count past the run's end):
            # nothing was killed, so there is nothing to resume
            tr.outcome = "recovered"
            tr.detail = "crash trigger never fired; run completed"
            return tr
        except RankFailure:
            pass
        except BaseException as exc:  # noqa: BLE001
            tr.outcome, tr.detail = _classify(exc)
            return tr
        if not ckpt.exists():
            tr.outcome = "recovered"
            tr.detail = "killed before the first checkpoint; cold rerun"
            res = None
        else:
            try:
                res = _run(executor_name, config=_config(), resume_from=ckpt)
            except BaseException as exc:  # noqa: BLE001
                tr.outcome, tr.detail = _classify(exc)
                return tr
        if res is not None:
            if _matches(res, base, exact=True):
                tr.outcome = "recovered"
            else:
                tr.outcome = "converged-differs"
                tr.detail = (
                    f"resumed u_end={res.u_end!r} != uninterrupted "
                    f"{base.u_end!r}"
                )
    return tr


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.chaos",
        description="seeded fault-injection soak over the space-time grid",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--p-time", type=int, default=2)
    parser.add_argument("--p-space", type=int, default=2)
    parser.add_argument(
        "--executors", default="serial",
        help="comma-separated subset of: serial,process",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized campaign: 6 trials under both executors",
    )
    parser.add_argument("--json", type=pathlib.Path, default=None)
    args = parser.parse_args(argv)

    executors = tuple(e for e in args.executors.split(",") if e)
    trials = args.trials
    if args.smoke:
        executors = ("serial", "process")
        trials = 6
    cfg = CampaignConfig(
        seed=args.seed, trials=trials, p_time=args.p_time,
        p_space=args.p_space, executors=executors,
    )
    report = run_campaign(cfg)
    print(report.summary())
    if args.json is not None:
        args.json.write_text(json.dumps(report.to_dict(), indent=2))
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
