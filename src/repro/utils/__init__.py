"""Small shared utilities: timers, chunk iteration, validation helpers."""

from repro.utils.timing import Timer, TimingRegistry, timed
from repro.utils.chunking import chunk_ranges, chunk_pairs_budget
from repro.utils.validation import (
    check_positive,
    check_nonnegative,
    check_array,
    check_in,
)

__all__ = [
    "Timer",
    "TimingRegistry",
    "timed",
    "chunk_ranges",
    "chunk_pairs_budget",
    "check_positive",
    "check_nonnegative",
    "check_array",
    "check_in",
]
