"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value >= 0``; return the value."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")
    return value


def check_array(
    name: str,
    arr: np.ndarray,
    shape: Sequence[int | None] | None = None,
    dtype: Any = None,
    finite: bool = False,
) -> np.ndarray:
    """Validate shape / dtype / finiteness of an ndarray.

    ``shape`` entries of ``None`` (or ``-1``) are wildcards matching any
    extent — ``shape=(None, 3)`` is the tree engine's "any number of 3D
    points" contract.  Every failing axis is reported in a *single*
    ``ValueError`` so a caller sees the whole mismatch at once instead of
    fixing axes one traceback at a time.  ``dtype`` converts via
    ``np.asarray`` (no copy when already compatible); ``finite=True``
    additionally rejects NaN/Inf entries, reporting how many and where
    the first one sits.
    """
    arr = np.asarray(arr, dtype=dtype)
    if shape is not None:
        want_shape = tuple(
            None if (w is None or w == -1) else int(w) for w in shape
        )
        if arr.ndim != len(want_shape):
            raise ValueError(
                f"{name} must have ndim {len(want_shape)}, got shape {arr.shape}"
            )
        problems = [
            f"axis {axis} must have length {want}"
            for axis, want in enumerate(want_shape)
            if want is not None and arr.shape[axis] != want
        ]
        if problems:
            rendered = tuple("any" if w is None else w for w in want_shape)
            raise ValueError(
                f"{name} {'; '.join(problems)}, got shape {arr.shape} "
                f"(expected {rendered})"
            )
    if finite:
        finite_mask = np.isfinite(arr)
        if not np.all(finite_mask):
            n_bad = int(arr.size - np.count_nonzero(finite_mask))
            first = (
                np.unravel_index(
                    int(np.argmin(finite_mask.reshape(-1))), arr.shape
                )
                if arr.ndim else ()
            )
            raise ValueError(
                f"{name} contains {n_bad} non-finite value(s); "
                f"first at index {tuple(int(i) for i in first)}"
            )
    return arr


def as_shape3(name: str, x: np.ndarray) -> Tuple[np.ndarray, int]:
    """Coerce to a float64 (N, 3) array and return (array, N)."""
    arr = check_array(name, x, shape=(None, 3), dtype=np.float64)
    return arr, arr.shape[0]
