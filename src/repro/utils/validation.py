"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value >= 0``; return the value."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")
    return value


def check_array(
    name: str,
    arr: np.ndarray,
    shape: Sequence[int | None] | None = None,
    dtype: Any = None,
    finite: bool = False,
) -> np.ndarray:
    """Validate shape / dtype / finiteness of an ndarray.

    ``shape`` entries of ``None`` match any extent; ``dtype`` is compared by
    kind-compatible casting (``np.float64`` accepts any float).  Returns the
    array converted to ``dtype`` when one is given (no copy if compatible).
    """
    arr = np.asarray(arr, dtype=dtype)
    if shape is not None:
        if arr.ndim != len(shape):
            raise ValueError(
                f"{name} must have ndim {len(shape)}, got shape {arr.shape}"
            )
        for axis, want in enumerate(shape):
            if want is not None and arr.shape[axis] != want:
                raise ValueError(
                    f"{name} axis {axis} must have length {want}, "
                    f"got shape {arr.shape}"
                )
    if finite and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def as_shape3(name: str, x: np.ndarray) -> Tuple[np.ndarray, int]:
    """Coerce to a float64 (N, 3) array and return (array, N)."""
    arr = check_array(name, x, shape=(None, 3), dtype=np.float64)
    return arr, arr.shape[0]
