"""Backwards-compatible shim over :mod:`repro.obs.timing`.

The :class:`Timer` / :class:`TimingRegistry` phase timers moved into the
observability package (``repro.obs``) when the tracer was introduced, so
that :meth:`TimingRegistry.phase` can double as a tracer span without a
circular import.  This module re-exports them unchanged — every existing
``from repro.utils.timing import ...`` keeps working, and the classes are
the *same objects* (``repro.utils.timing.Timer is repro.obs.Timer``).

New code should import from :mod:`repro.obs` directly.
"""

from repro.obs.timing import Timer, TimingRegistry, timed

__all__ = ["Timer", "TimingRegistry", "timed"]
