"""Chunk iteration helpers for cache-friendly O(N^2) kernels.

Direct summation over N targets x N sources builds (chunk, N) distance
matrices; the chunk size bounds the working set so temporaries stay inside
cache instead of thrashing main memory (see the "beware of cache effects"
guidance).  ``chunk_pairs_budget`` picks a chunk size from a bytes budget.
"""

from __future__ import annotations

from typing import Iterator, Tuple


def chunk_ranges(n: int, chunk: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` half-open ranges covering ``range(n)``.

    >>> list(chunk_ranges(5, 2))
    [(0, 2), (2, 4), (4, 5)]
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if chunk <= 0:
        raise ValueError(f"chunk must be > 0, got {chunk}")
    start = 0
    while start < n:
        stop = min(start + chunk, n)
        yield (start, stop)
        start = stop


def chunk_pairs_budget(
    n_sources: int,
    bytes_per_pair: int = 8 * 12,
    budget_bytes: int = 64 * 2**20,
    minimum: int = 16,
) -> int:
    """Pick a target-chunk size so chunk*N_source temporaries fit a budget.

    Parameters
    ----------
    n_sources:
        Number of source particles each target interacts with.
    bytes_per_pair:
        Approximate bytes of temporaries allocated per (target, source)
        pair; the default assumes ~12 float64 intermediates.
    budget_bytes:
        Total temporary-memory budget (default 64 MiB).
    minimum:
        Never return a chunk smaller than this.
    """
    if n_sources <= 0:
        return minimum
    chunk = budget_bytes // max(1, bytes_per_pair * n_sources)
    return max(minimum, int(chunk))
