"""Analytic strong-scaling model of the parallel Barnes-Hut code (Fig. 5).

Total per-step wall-clock on ``P`` cores for ``N`` particles:

    T(N, P) = T_traversal + T_branch + T_build

* ``T_traversal = I(N) * N / P * t_int  +  fetch terms`` — the force
  computation; ``I(N)`` (interactions per particle) is measured on our own
  tree code and grows ~ ``log N`` at fixed theta.
* ``T_branch = latency * ceil(log2 P) + B(N, P) * node_bytes / bandwidth``
  — the branch-node allgather; ``B`` is the *total* number of branch nodes,
  measured from the SFC decomposition (:mod:`repro.tree.domain`), and grows
  with ``P``, which is exactly why strong scaling saturates (Fig. 5).
* ``T_build = c_build * (N/P) * log2(N/P + 1)`` — local sort + tree build.

Calibration measures ``I(N)`` and seconds-per-interaction on the Python
tree code and transplants the flop count onto a target machine model, so
the *shape* (crossover points, saturation) is driven by real measured work
counts rather than guesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.perfmodel.machine import JUGENE, MachineModel

__all__ = ["PepcScalingModel", "ScalingPoint", "calibrate_interactions"]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a strong-scaling curve."""

    n_particles: int
    cores: int
    total: float
    traversal: float
    branch_exchange: float
    build: float


@dataclass
class PepcScalingModel:
    """Calibrated analytic model of the space-parallel tree code."""

    machine: MachineModel = field(default_factory=lambda: JUGENE)
    #: interactions per particle: I(N) = ipp_a + ipp_b * log2(N)
    ipp_a: float = -40.0
    ipp_b: float = 35.0
    #: flops per particle-cluster interaction (quadrupole + gradient)
    flops_per_interaction: float = 120.0
    #: bytes per multipole node on the wire (center, moments, meta)
    node_bytes: float = 256.0
    #: branch nodes per rank: b(n_local) = br_a + br_b * log2(n_local + 1)
    br_a: float = 6.0
    br_b: float = 3.0
    #: build cost per particle (fraction of an interaction)
    build_factor: float = 8.0
    #: per-rank constant overhead per traversal (s)
    overhead: float = 5.0e-4

    def interactions_per_particle(self, n: float) -> float:
        return max(1.0, self.ipp_a + self.ipp_b * np.log2(max(n, 2.0)))

    def traversal_time(self, n: int, cores: int) -> float:
        t_int = self.machine.interaction_time(self.flops_per_interaction)
        work = self.interactions_per_particle(n) * n / cores * t_int
        # remote-node fetches: ranks request ~ surface share of the tree
        n_local = max(n / cores, 1.0)
        fetch = (
            self.machine.latency * np.log2(cores + 1)
            + (n_local ** (2.0 / 3.0)) * self.node_bytes / self.machine.bandwidth
        )
        return work + fetch + self.overhead

    def branch_count_per_rank(self, n_local: float) -> float:
        return self.br_a + self.br_b * np.log2(n_local + 1.0)

    def branch_exchange_time(self, n: int, cores: int) -> float:
        ranks = max(cores // self.machine.cores_per_node, 1)
        n_local = max(n / ranks, 1.0)
        total_branches = ranks * self.branch_count_per_rank(n_local)
        return (
            self.machine.latency * np.ceil(np.log2(ranks + 1))
            + total_branches * self.node_bytes / self.machine.bandwidth
        )

    def build_time(self, n: int, cores: int) -> float:
        n_local = max(n / cores, 1.0)
        t_int = self.machine.interaction_time(self.flops_per_interaction)
        return self.build_factor * n_local * np.log2(n_local + 1.0) * t_int

    def point(self, n: int, cores: int) -> ScalingPoint:
        trav = self.traversal_time(n, cores)
        br = self.branch_exchange_time(n, cores)
        bld = self.build_time(n, cores)
        return ScalingPoint(
            n_particles=n,
            cores=cores,
            total=trav + br + bld,
            traversal=trav,
            branch_exchange=br,
            build=bld,
        )

    def sweep(self, n: int, cores: Sequence[int]) -> list[ScalingPoint]:
        """Strong-scaling curve for one problem size."""
        return [self.point(n, c) for c in cores]

    def saturation_cores(self, n: int, max_cores: Optional[int] = None) -> int:
        """Core count with minimal total time (the strong-scaling knee)."""
        limit = max_cores or self.machine.max_cores
        cores = 1
        best_cores, best_time = 1, float("inf")
        while cores <= limit:
            t = self.point(n, cores).total
            if t < best_time:
                best_time, best_cores = t, cores
            cores *= 2
        return best_cores


def calibrate_interactions(
    measurements: Dict[int, float],
) -> tuple[float, float]:
    """Fit ``I(N) = a + b log2 N`` from measured interactions-per-particle.

    ``measurements`` maps particle counts to measured interactions per
    particle (from :class:`~repro.tree.evaluator.TreeStats`).
    """
    if len(measurements) < 2:
        raise ValueError("need at least two (N, I) measurements to fit")
    ns = np.array(sorted(measurements))
    ys = np.array([measurements[int(n)] for n in ns])
    x = np.log2(ns.astype(np.float64))
    b, a = np.polyfit(x, ys, 1)
    return float(a), float(b)
