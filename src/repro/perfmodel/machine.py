"""Machine descriptions for the analytic performance model.

The paper's runs were on JUGENE, the IBM Blue Gene/P at Juelich
Supercomputing Centre: 73,728 compute nodes x 4 PowerPC 450 cores at
850 MHz (294,912 cores), 3D-torus interconnect with ~375 MB/s per link and
MPI latencies of a few microseconds.  The numbers below are public
figures; they set the absolute scale of modelled runtimes, while the
*shape* of the scaling curves comes from calibrated work counts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "JUGENE", "PYTHON_LAPTOP"]


@dataclass(frozen=True)
class MachineModel:
    """Per-core compute rate and interconnect parameters."""

    name: str
    cores_per_node: int
    #: sustained floating point rate per core (flop/s) on this workload
    flops_per_core: float
    #: MPI point-to-point latency (s)
    latency: float
    #: per-link bandwidth (bytes/s)
    bandwidth: float
    #: total cores available
    max_cores: int

    def interaction_time(self, flops_per_interaction: float = 60.0) -> float:
        """Seconds per particle-cluster interaction."""
        return flops_per_interaction / self.flops_per_core

    def transfer_time(self, nbytes: float) -> float:
        return self.latency + nbytes / self.bandwidth


#: IBM Blue Gene/P installation at JSC (the paper's machine)
JUGENE = MachineModel(
    name="JUGENE (IBM Blue Gene/P)",
    cores_per_node=4,
    # PPC450 @ 850 MHz, dual FPU: 3.4 GF peak; ~20% sustained on tree walks
    flops_per_core=0.68e9,
    latency=3.5e-6,
    bandwidth=375e6,
    max_cores=294_912,
)

#: a single-core NumPy environment (for sanity-scaling of measured runs)
PYTHON_LAPTOP = MachineModel(
    name="single-core NumPy",
    cores_per_node=1,
    flops_per_core=0.15e9,  # effective rate of the vectorised tree walk
    latency=1e-6,
    bandwidth=10e9,
    max_cores=1,
)
