"""Calibrated analytic performance models (Blue Gene/P scaling, Fig. 5)."""

from repro.perfmodel.machine import MachineModel, JUGENE, PYTHON_LAPTOP
from repro.perfmodel.pepc_model import (
    PepcScalingModel,
    ScalingPoint,
    calibrate_interactions,
)

__all__ = [
    "MachineModel",
    "JUGENE",
    "PYTHON_LAPTOP",
    "PepcScalingModel",
    "ScalingPoint",
    "calibrate_interactions",
]
