"""The PFASST controller (paper Sec. III-B-3, Algorithm 1, Fig. 6).

The algorithm is written once, as a *rank program* for the simulated MPI
scheduler (:mod:`repro.parallel.simmpi`): ``P_T`` ranks each own one time
slice per block, sweep SDC on a level hierarchy, and exchange slice
boundary values with their neighbours.  Running the program under the
scheduler yields both the numerics (identical regardless of the timing
model) and per-rank virtual wall-clocks for the speedup studies (Fig. 8).

Structure per block:

1. **Predictor** — staggered coarse sweeps: rank ``n`` performs ``n + 1``
   coarse sweeps, receiving an updated initial value from rank ``n - 1``
   before each sweep after the first (the staircase of Fig. 6, same
   aggregate cost as one serial coarse sweep per slice).  The result is
   interpolated up through the hierarchy.
2. **Iterations** — each iteration runs Algorithm 1's V-cycle:
   going *down*: sweep, send the slice end value forward, restrict,
   compute the FAS correction; at the *coarsest* level: receive the new
   initial value, sweep, send forward; going *up*: add the interpolated
   coarse correction, re-evaluate, receive the new fine initial value and
   apply the interpolated initial-value correction.

Multi-block runs chain blocks by broadcasting the last slice's end value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.parallel.collectives import bcast
from repro.parallel.simmpi import CommCostModel, Scheduler, VirtualComm
from repro.pfasst.fas import fas_correction
from repro.pfasst.level import Level, LevelSpec
from repro.pfasst.transfer import SpatialTransfer, TimeSpaceTransfer
from repro.utils.validation import check_positive

__all__ = ["PfasstConfig", "PfasstResult", "run_pfasst", "pfasst_rank_program"]


@dataclass(frozen=True)
class PfasstConfig:
    """Run parameters for PFASST over ``[t0, t_end]``.

    ``PFASST(X, Y, P_T)`` in the paper's notation maps to ``iterations=X``,
    coarsest level ``sweeps=Y``, and ``p_time=P_T`` scheduler ranks.
    """

    t0: float
    t_end: float
    n_steps: int
    iterations: int
    #: When True, recompute F after every interpolation (the literal
    #: ``FEval`` of the paper's Algorithm 1 listing).  The default False
    #: corrects F by interpolating the *coarse F increment* instead —
    #: the practice of production PFASST codes, saving one full set of
    #: fine evaluations per iteration at no cost to the fixed point
    #: (both variants converge to the fine collocation solution; the
    #: ablation benchmark compares them).
    reeval_after_interp: bool = False
    #: optional residual-based early stopping (adds one allreduce/iteration)
    residual_tol: Optional[float] = None
    #: record begin/end annotations for every sweep on the scheduler's
    #: trace — enables schedule diagrams like the paper's Fig. 6
    trace: bool = False

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if not self.t_end > self.t0:
            raise ValueError(f"t_end {self.t_end} must be > t0 {self.t0}")

    @property
    def dt(self) -> float:
        return (self.t_end - self.t0) / self.n_steps


@dataclass
class PfasstResult:
    """Outcome of a PFASST run."""

    u_end: np.ndarray
    #: slice end values of the final block, one per time rank
    slice_end_values: List[np.ndarray]
    #: fine-level residual history: residuals[rank][iteration] (last block)
    residuals: List[List[float]]
    #: virtual wall-clock per rank (seconds)
    clocks: List[float]
    #: iterations actually performed per block (== config.iterations unless
    #: residual_tol triggered early exit)
    iterations_done: List[int] = field(default_factory=list)
    #: annotated schedule events when ``config.trace`` was set
    trace: List[Any] = field(default_factory=list)
    #: per-level evaluator bookkeeping (RHS calls, tree-cache hit/miss
    #: counters) sampled from the level specs after the run; empty dicts
    #: for problems without an instrumented evaluator
    evaluator_stats: List[Dict[str, int]] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return max(self.clocks) if self.clocks else 0.0


def _build_levels(
    specs: Sequence[LevelSpec], spatial: Optional[Sequence[SpatialTransfer]]
) -> tuple[List[Level], List[TimeSpaceTransfer]]:
    if len(specs) < 2:
        raise ValueError("PFASST needs at least 2 levels (fine + coarse)")
    levels = [Level(spec) for spec in specs]
    transfers = []
    for i in range(len(levels) - 1):
        spatial_i = spatial[i] if spatial is not None else None
        transfers.append(
            TimeSpaceTransfer(levels[i].rule, levels[i + 1].rule, spatial_i)
        )
    return levels, transfers


def pfasst_rank_program(
    comm: VirtualComm,
    config: PfasstConfig,
    specs: Sequence[LevelSpec],
    u0: np.ndarray,
    spatial: Optional[Sequence[SpatialTransfer]] = None,
) -> Generator[Any, Any, Dict[str, Any]]:
    """Rank program executing PFASST on one time rank.

    Yields simulated-MPI operations; returns a dict with the rank's end
    value, residual history and bookkeeping.
    """
    rank, p_time = comm.rank, comm.size
    if config.n_steps % p_time != 0:
        raise ValueError(
            f"n_steps={config.n_steps} must be a multiple of p_time={p_time}"
        )
    n_blocks = config.n_steps // p_time
    dt = config.dt
    levels, transfers = _build_levels(specs, spatial)
    n_levels = len(levels)
    coarsest = levels[-1]
    for lv in levels:
        lv._dt = dt

    u_block = np.asarray(u0, dtype=np.float64).copy()
    residual_history: List[List[float]] = []
    iterations_done: List[int] = []

    for block in range(n_blocks):
        t_slice = config.t0 + (block * p_time + rank) * dt

        # -------------------- predictor --------------------------------
        # restrict the block initial value through the hierarchy
        u0_by_level = [u_block]
        for tr in transfers:
            u0_by_level.append(tr.restrict_state(u0_by_level[-1]))
        coarsest.u0 = u0_by_level[-1]
        coarsest.U, coarsest.F = coarsest.sweeper.initialize(
            t_slice, dt, coarsest.u0, "spread"
        )
        for j in range(rank + 1):
            new_u0 = None
            if j > 0:
                new_u0 = yield comm.recv(rank - 1, ("pred", block, j))
                coarsest.u0 = new_u0
            if config.trace:
                yield comm.annotate(f"begin:predict:{j}")
            coarsest.U, coarsest.F = coarsest.sweeper.sweep(
                t_slice, dt, coarsest.U, coarsest.F, u0=new_u0
            )
            if config.trace:
                yield comm.annotate(f"end:predict:{j}")
            if rank < p_time - 1:
                yield comm.send(
                    rank + 1, ("pred", block, j + 1), coarsest.end_value
                )

        # interpolate the predicted solution up through the hierarchy
        for lev in range(n_levels - 2, -1, -1):
            tr = transfers[lev]
            fine, coarse = levels[lev], levels[lev + 1]
            fine.U = tr.interpolate_nodes(coarse.U)
            fine.u0 = fine.U[0].copy()
            # interpolated F[0] is approximate: the next sweep must
            # re-evaluate it from u0 (dirty flag)
            fine.u0_dirty = True
            if config.reeval_after_interp:
                fine.F = _evaluate_all(fine, t_slice, dt)
            else:
                fine.F = tr.interpolate_nodes(coarse.F)
            fine.tau = None

        residuals: List[float] = []
        # -------------------- PFASST iterations ------------------------
        k_done = 0
        for k in range(config.iterations):
            # ---- down the V-cycle ----
            for lev in range(n_levels - 1):
                level = levels[lev]
                tau = level.tau if lev > 0 else None
                if config.trace:
                    yield comm.annotate(f"begin:sweep:L{lev}:k{k}")
                for s in range(level.spec.sweeps):
                    pass_u0 = level.u0 if (s == 0 and level.u0_dirty) else None
                    level.U, level.F = level.sweeper.sweep(
                        t_slice, dt, level.U, level.F,
                        u0=pass_u0, tau=tau,
                    )
                level.u0_dirty = False
                if config.trace:
                    yield comm.annotate(f"end:sweep:L{lev}:k{k}")
                if rank < p_time - 1:
                    yield comm.send(
                        rank + 1, ("lvl", block, lev, k), level.end_value
                    )
                # restrict and compute FAS for the next level down
                tr = transfers[lev]
                coarse = levels[lev + 1]
                coarse.U = tr.restrict_nodes(level.U)
                coarse.U_at_restriction = coarse.U.copy()
                coarse.u0 = tr.restrict_state(level.u0)
                coarse.F = _evaluate_all(coarse, t_slice, dt)
                coarse.F_at_restriction = coarse.F.copy()
                coarse.tau = fas_correction(
                    dt, tr, level.F, coarse.F,
                    tau_fine=level.tau if lev > 0 else None,
                )

            # ---- coarsest level ----
            if rank > 0:
                coarsest.u0 = yield comm.recv(
                    rank - 1, ("lvl", block, n_levels - 1, k)
                )
            else:
                coarsest.u0 = u0_by_level[-1]
            new_u0 = coarsest.u0
            if config.trace:
                yield comm.annotate(f"begin:sweep:L{n_levels - 1}:k{k}")
            for s in range(coarsest.spec.sweeps):
                coarsest.U, coarsest.F = coarsest.sweeper.sweep(
                    t_slice, dt, coarsest.U, coarsest.F,
                    u0=new_u0 if s == 0 else None, tau=coarsest.tau,
                )
            if config.trace:
                yield comm.annotate(f"end:sweep:L{n_levels - 1}:k{k}")
            if rank < p_time - 1:
                yield comm.send(
                    rank + 1, ("lvl", block, n_levels - 1, k),
                    coarsest.end_value,
                )

            # ---- up the V-cycle ----
            for lev in range(n_levels - 2, -1, -1):
                tr = transfers[lev]
                level, coarse = levels[lev], levels[lev + 1]
                level.U = level.U + tr.interpolate_nodes(
                    coarse.U - coarse.U_at_restriction
                )
                if config.reeval_after_interp:
                    level.F = _evaluate_all(level, t_slice, dt)
                else:
                    # correct F by the interpolated increment of the
                    # coarse evaluations since restriction
                    level.F = level.F + tr.interpolate_nodes(
                        coarse.F - coarse.F_at_restriction
                    )
                # new initial value for this level
                if rank > 0:
                    recv_u0 = yield comm.recv(rank - 1, ("lvl", block, lev, k))
                    delta0 = coarse.u0 - tr.restrict_state(recv_u0)
                    level.u0 = recv_u0 + tr.interpolate_state(delta0)
                    level.u0_dirty = True
                else:
                    level.u0 = u0_by_level[lev]
                level.U[0] = level.u0
                # intermediate levels sweep once more on the way up
                if 0 < lev:
                    pass_u0 = level.u0 if level.u0_dirty else None
                    level.U, level.F = level.sweeper.sweep(
                        t_slice, dt, level.U, level.F,
                        u0=pass_u0, tau=level.tau,
                    )
                    level.u0_dirty = False
                elif config.reeval_after_interp and not level.u0_dirty:
                    # keep the literal-Algorithm-1 mode's F fully
                    # consistent at node 0 as well
                    level.F[0] = level.problem.rhs(t_slice, level.u0)

            fine = levels[0]
            residuals.append(
                fine.sweeper.residual(dt, fine.U, fine.F, fine.u0)
            )
            k_done = k + 1
            if config.residual_tol is not None:
                from repro.parallel.collectives import allreduce

                worst = yield from allreduce(
                    comm, residuals[-1], op=max,
                    tag=("rtol", block, k),
                )
                if worst <= config.residual_tol:
                    break

        iterations_done.append(k_done)
        residual_history = [residuals]  # keep the last block's history

        # chain blocks: broadcast the final slice's end value
        u_block = yield from bcast(
            comm, levels[0].end_value, root=p_time - 1,
            tag=f"_blockend{block}",
        )

    return {
        "rank": rank,
        "end_value": levels[0].end_value,
        "block_end": u_block,
        "residuals": residual_history[0] if residual_history else [],
        "iterations_done": iterations_done,
    }


def _evaluate_all(level: Level, t_slice: float, dt: float) -> np.ndarray:
    """Evaluate the level's RHS at every collocation node."""
    times = level.sweeper.node_times(t_slice, dt)
    return np.stack(
        [level.problem.rhs(t, u) for t, u in zip(times, level.U)], axis=0
    )


def _collect_evaluator_stats(
    specs: Sequence[LevelSpec],
) -> List[Dict[str, int]]:
    """RHS-call counts and tree-cache counters per level spec.

    Note that ``run_pfasst`` instantiates one :class:`Level` hierarchy per
    rank program around the *shared* spec problems, so the counters
    aggregate over all ranks — which is exactly the total-work view the
    benchmarks need.
    """
    out: List[Dict[str, int]] = []
    for spec in specs:
        entry: Dict[str, int] = {}
        evaluator = getattr(spec.problem, "evaluator", None)
        if evaluator is not None:
            entry["calls"] = int(getattr(evaluator, "calls", 0))
            cache_stats = getattr(evaluator, "cache_stats", None)
            if cache_stats is not None:
                entry.update(cache_stats.as_dict())
        out.append(entry)
    return out


def run_pfasst(
    config: PfasstConfig,
    specs: Sequence[LevelSpec],
    u0: np.ndarray,
    p_time: int,
    cost_model: Optional[CommCostModel] = None,
    measure_compute: bool = False,
    spatial: Optional[Sequence[SpatialTransfer]] = None,
    verify: bool = False,
) -> PfasstResult:
    """Execute PFASST with ``p_time`` simulated time ranks.

    Set ``measure_compute=True`` (and a cost model) for speedup studies;
    leave it off for pure accuracy experiments, where virtual time is
    irrelevant and scheduling overhead should be minimal.
    ``verify=True`` re-runs the whole block pipeline under the reversed
    rank-service order and requires byte-identical results (the
    scheduler's race-detector replay; roughly doubles the run time).
    """
    check_positive("p_time", p_time)
    scheduler = Scheduler(
        p_time, cost_model=cost_model, measure_compute=measure_compute,
        verify=verify,
    )
    results = scheduler.run(
        pfasst_rank_program, args=(config, specs, np.asarray(u0), spatial)
    )
    by_rank = sorted(results, key=lambda r: r["rank"])
    return PfasstResult(
        u_end=by_rank[-1]["end_value"],
        slice_end_values=[r["end_value"] for r in by_rank],
        residuals=[r["residuals"] for r in by_rank],
        clocks=list(scheduler.clocks),
        iterations_done=by_rank[0]["iterations_done"],
        trace=list(scheduler.trace),
        evaluator_stats=_collect_evaluator_stats(specs),
    )
