"""The PFASST controller (paper Sec. III-B-3, Algorithm 1, Fig. 6).

The algorithm is written once, as a *rank program* for the simulated MPI
scheduler (:mod:`repro.parallel.simmpi`): ``P_T`` ranks each own one time
slice per block, sweep SDC on a level hierarchy, and exchange slice
boundary values with their neighbours.  Running the program under the
scheduler yields both the numerics (identical regardless of the timing
model) and per-rank virtual wall-clocks for the speedup studies (Fig. 8).

Structure per block:

1. **Predictor** — staggered coarse sweeps: rank ``n`` performs ``n + 1``
   coarse sweeps, receiving an updated initial value from rank ``n - 1``
   before each sweep after the first (the staircase of Fig. 6, same
   aggregate cost as one serial coarse sweep per slice).  The result is
   interpolated up through the hierarchy.
2. **Iterations** — each iteration runs Algorithm 1's V-cycle:
   going *down*: sweep, send the slice end value forward, restrict,
   compute the FAS correction; at the *coarsest* level: receive the new
   initial value, sweep, send forward; going *up*: add the interpolated
   coarse correction, re-evaluate, receive the new fine initial value and
   apply the interpolated initial-value correction.

Multi-block runs chain blocks by broadcasting the last slice's end value.

Fault tolerance (``config.recovery``): the PFASST iteration is naturally
resilient — the coarse level carries a usable copy of the solution — so a
rank lost to a simulated hard fault (:mod:`repro.parallel.faults`) can be
recovered *algorithmically* instead of by global checkpoint-restart:

* ``"fail"`` (default) — no recovery protocol; a crash kills the run
  exactly as before this subsystem existed.  The message pattern is
  byte-identical to the fault-free controller.
* ``"cold-restart"`` — all ranks abandon the current block and re-run its
  predictor from the block initial value (which the replacement rank
  re-fetches from a surviving rank).
* ``"warm-restart"`` — only the lost rank rebuilds: its left neighbour
  sends the *coarse-level* end value (the paper's "less accurate but
  usable copy"), the replacement interpolates it to the fine level, runs
  predictor-quality coarse sweeps, and iterating continues; surviving
  ranks keep their state, so reconvergence needs fewer extra iterations
  than a cold restart.

With recovery enabled, every iteration ends in a small status allreduce
(crash detection is collective) and neighbour receives carry a timeout so
a dead sender surfaces as a :class:`~repro.parallel.faults.RecvTimeout`
instead of a deadlock.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.tracer import Tracer
from repro.parallel import tags
from repro.parallel.collectives import allgather, allreduce, bcast
from repro.parallel.executor import DispatchContext, ExecutionBackend
from repro.parallel.faults import FaultPlan, RankFailure, RecvTimeout
from repro.parallel.simmpi import CommCostModel, Scheduler, VirtualComm
from repro.parallel.topology import SpaceTimeGrid
from repro.pfasst.fas import fas_correction
from repro.pfasst.level import Level, LevelSpec
from repro.pfasst.transfer import SpatialTransfer, TimeSpaceTransfer
from repro.sdc.sweeper import evaluate_rhs
from repro.utils.validation import check_positive

__all__ = [
    "PfasstConfig",
    "PfasstResult",
    "RECOVERY_POLICIES",
    "run_pfasst",
    "pfasst_rank_program",
]

RECOVERY_POLICIES = ("fail", "cold-restart", "warm-restart")


@dataclass(frozen=True)
class PfasstConfig:
    """Run parameters for PFASST over ``[t0, t_end]``.

    ``PFASST(X, Y, P_T)`` in the paper's notation maps to ``iterations=X``,
    coarsest level ``sweeps=Y``, and ``p_time=P_T`` scheduler ranks.
    """

    t0: float
    t_end: float
    n_steps: int
    iterations: int
    #: When True, recompute F after every interpolation (the literal
    #: ``FEval`` of the paper's Algorithm 1 listing).  The default False
    #: corrects F by interpolating the *coarse F increment* instead —
    #: the practice of production PFASST codes, saving one full set of
    #: fine evaluations per iteration at no cost to the fixed point
    #: (both variants converge to the fine collocation solution; the
    #: ablation benchmark compares them).
    reeval_after_interp: bool = False
    #: optional residual-based early stopping (adds one allreduce/iteration)
    residual_tol: Optional[float] = None
    #: record begin/end annotations for every sweep on the scheduler's
    #: trace — enables schedule diagrams like the paper's Fig. 6
    trace: bool = False
    #: crash-recovery policy: ``"fail"`` (no protocol, byte-identical to
    #: the pre-fault-tolerance controller), ``"cold-restart"`` (redo the
    #: block from its predictor) or ``"warm-restart"`` (rebuild only the
    #: lost rank from a neighbour's coarse solution)
    recovery: str = "fail"
    #: virtual-time timeout on neighbour receives when recovery is on —
    #: lazy semantics: it only ever fires at a global stall, so any value
    #: works and it never expires spuriously (see simmpi docs)
    recovery_timeout: float = 0.05
    #: link-layer retransmits per receive before a timeout/corruption is
    #: escalated to the recovery protocol
    recovery_retries: int = 1
    #: restarts allowed per block before the run gives up
    max_restarts: int = 3

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if not self.t_end > self.t0:
            raise ValueError(f"t_end {self.t_end} must be > t0 {self.t0}")
        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_POLICIES}, "
                f"got {self.recovery!r}"
            )
        if not self.recovery_timeout > 0:
            raise ValueError(
                f"recovery_timeout must be > 0, got {self.recovery_timeout}"
            )
        if self.recovery_retries < 0:
            raise ValueError(
                f"recovery_retries must be >= 0, got {self.recovery_retries}"
            )
        if self.max_restarts < 1:
            raise ValueError(
                f"max_restarts must be >= 1, got {self.max_restarts}"
            )

    @property
    def dt(self) -> float:
        return (self.t_end - self.t0) / self.n_steps


@dataclass
class PfasstResult:
    """Outcome of a PFASST run."""

    u_end: np.ndarray
    #: slice end values of the final block, one per time rank
    slice_end_values: List[np.ndarray]
    #: fine-level residual history: residuals[rank][iteration] (last block)
    residuals: List[List[float]]
    #: virtual wall-clock per rank (seconds)
    clocks: List[float]
    #: iterations actually performed per block (== config.iterations unless
    #: residual_tol triggered early exit)
    iterations_done: List[int] = field(default_factory=list)
    #: annotated schedule events when ``config.trace`` was set
    trace: List[Any] = field(default_factory=list)
    #: per-level evaluator bookkeeping (RHS calls, tree-cache hit/miss
    #: counters) sampled from the level specs after the run; empty dicts
    #: for problems without an instrumented evaluator
    evaluator_stats: List[Dict[str, int]] = field(default_factory=list)
    #: V-cycle iterations *attempted* per block, including iterations
    #: discarded by a restart — ``total_iterations[b] -
    #: iterations_done[b]`` is the algorithmic recovery overhead
    total_iterations: List[int] = field(default_factory=list)
    #: one entry per recovery action the protocol took (block, attempt,
    #: phase, iteration, policy, failed ranks)
    recoveries: List[Dict[str, Any]] = field(default_factory=list)
    #: the scheduler's :class:`~repro.parallel.faults.ResilienceReport`
    #: (``None``-ish/empty when no fault plan was active)
    resilience: Optional[Any] = None
    #: snapshot of the scheduler's metrics registry (``mpi.messages`` /
    #: ``mpi.bytes`` globally and per rank pair, ``mpi.retransmissions``)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: the run's :class:`repro.analysis.commgraph.DeterminismCertificate`
    #: when ``certify=True`` was requested; ``None`` otherwise
    certificate: Optional[Any] = None

    @property
    def makespan(self) -> float:
        return max(self.clocks) if self.clocks else 0.0

    @property
    def recovery_iterations(self) -> int:
        """Total iterations spent on recovery across all blocks."""
        return sum(self.total_iterations) - sum(self.iterations_done)


def _build_levels(
    specs: Sequence[LevelSpec], spatial: Optional[Sequence[SpatialTransfer]]
) -> tuple[List[Level], List[TimeSpaceTransfer]]:
    if len(specs) < 2:
        raise ValueError("PFASST needs at least 2 levels (fine + coarse)")
    levels = [Level(spec) for spec in specs]
    transfers = []
    for i in range(len(levels) - 1):
        spatial_i = spatial[i] if spatial is not None else None
        transfers.append(
            TimeSpaceTransfer(levels[i].rule, levels[i + 1].rule, spatial_i)
        )
    return levels, transfers


def _merge_ranks(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    """Allreduce op combining failed-rank sets (commutative, associative)."""
    return tuple(sorted(set(a) | set(b)))


def _merge_status(a, b):
    """Combine per-rank ``(failed_ranks, residual)`` iteration statuses.

    Piggybacking the residual on the failure-detection allreduce keeps
    fault-tolerant runs at *one* collective per iteration (instead of a
    status sync plus a separate ``residual_tol`` reduction) — and, more
    importantly, keeps the separate reduction out of the unrecoverable
    window: a crash during a collective is fatal, so fewer collectives
    mean fewer ops where a crash cannot be recovered.
    """
    return (_merge_ranks(a[0], b[0]), max(a[1], b[1]))


def pfasst_rank_program(
    comm: VirtualComm,
    config: PfasstConfig,
    specs: Sequence[LevelSpec],
    u0: np.ndarray,
    spatial: Optional[Sequence[SpatialTransfer]] = None,
    space: Optional[VirtualComm] = None,
    dispatch: Optional[DispatchContext] = None,
) -> Generator[Any, Any, Dict[str, Any]]:
    """Rank program executing PFASST on one time rank.

    Yields simulated-MPI operations; returns a dict with the rank's end
    value, residual history and bookkeeping.

    ``space`` optionally attaches a space communicator (a row of the
    paper's Fig. 2 grid, typically from ``comm.split``): every RHS
    evaluation is then driven collectively over its ranks via
    :func:`repro.sdc.sweeper.evaluate_rhs`, sharding the tree work while
    keeping the time algorithm — and, without a live ``space``, the op
    stream — unchanged.

    ``dispatch`` routes RHS evaluations of problems registered with the
    scheduler's execution backend through ``Compute`` ops (see
    :mod:`repro.parallel.executor`): independent evaluations across time
    ranks — and, on the grid, the per-row far/near tree segments — then
    run concurrently on real cores under a process backend, while the
    time algorithm, the message pattern and (with ``measure_compute``
    off) the virtual clocks stay byte-identical.

    With ``config.recovery != "fail"`` the program survives injected rank
    crashes (:class:`~repro.parallel.faults.RankFailure` thrown at an op
    boundary) during the predictor or a V-cycle iteration: failure
    detection is collective (a status allreduce after each phase), the
    block ``attempt`` counter is bumped into every message tag so stale
    messages from the abandoned phase can never be mistaken for live
    traffic, and the failed rank rebuilds per the policy.  A crash that
    lands *inside* the recovery protocol itself (status allreduce, block
    refetch, donor hand-off, block-end broadcast) is fatal — the same
    caveat a real fault-tolerant MPI has when the recovery collective
    itself fails.
    """
    rank, p_time = comm.rank, comm.size
    if config.n_steps % p_time != 0:
        raise ValueError(
            f"n_steps={config.n_steps} must be a multiple of p_time={p_time}"
        )
    n_blocks = config.n_steps // p_time
    dt = config.dt
    levels, transfers = _build_levels(specs, spatial)
    n_levels = len(levels)
    coarsest = levels[-1]
    for lv in levels:
        lv._dt = dt

    ft = config.recovery != "fail"
    # with recovery off these defaults make every Recv op byte-identical
    # to the pre-fault-tolerance controller
    rt = config.recovery_timeout if ft else None
    rr = config.recovery_retries if ft else 0
    # protocol collectives (status allreduces, block-end broadcast) use a
    # longer timeout than the neighbour detection receives: a dropped
    # collective leg still recovers by shadow retransmit, but at a crash
    # stall the scheduler expires the *shortest* timeout first, so the
    # neighbour receive — whose RecvTimeout the program catches — always
    # fires before a collective leg, which cannot catch it
    ct = rt * 8 if ft else None

    u_block = np.asarray(u0, dtype=np.float64).copy()
    residual_history: List[List[float]] = []
    iterations_done: List[int] = []
    total_iterations: List[int] = []
    recoveries: List[Dict[str, Any]] = []

    # ---- helpers (closures over the hierarchy) -------------------------
    def _interpolate_up(t_slice: float):
        """Fill the finer levels from the coarsest (predictor epilogue)."""
        for lev in range(n_levels - 2, -1, -1):
            tr = transfers[lev]
            fine, coarse = levels[lev], levels[lev + 1]
            fine.U = tr.interpolate_nodes(coarse.U)
            fine.u0 = fine.U[0].copy()
            # interpolated F[0] is approximate: the next sweep must
            # re-evaluate it from u0 (dirty flag)
            fine.u0_dirty = True
            if config.reeval_after_interp:
                fine.F = yield from _evaluate_all(fine, t_slice, dt, space, dispatch)
            else:
                fine.F = tr.interpolate_nodes(coarse.F)
            fine.tau = None

    def _predictor(block, attempt, t_slice, u0_by_level):
        coarsest.u0 = u0_by_level[-1]
        coarsest.U, coarsest.F = yield from coarsest.sweeper.initialize_gen(
            t_slice, dt, coarsest.u0, "spread", space=space, dispatch=dispatch
        )
        for j in range(rank + 1):
            new_u0 = None
            if j > 0:
                new_u0 = yield comm.recv(
                    rank - 1, (tags.PRED, block, attempt, j),
                    timeout=rt, retries=rr,
                )
                coarsest.u0 = new_u0
            if config.trace:
                yield comm.annotate(f"begin:predict:{j}")
            coarsest.U, coarsest.F = yield from coarsest.sweeper.sweep_gen(
                t_slice, dt, coarsest.U, coarsest.F, u0=new_u0, space=space, dispatch=dispatch
            )
            if config.trace:
                yield comm.annotate(f"end:predict:{j}")
            if rank < p_time - 1:
                yield comm.send(
                    rank + 1, (tags.PRED, block, attempt, j + 1),
                    coarsest.end_value,
                )
        # interpolate the predicted solution up through the hierarchy
        yield from _interpolate_up(t_slice)

    def _iteration(block, attempt, k, t_slice, u0_by_level):
        """One V-cycle; returns the fine-level residual."""
        # ---- down the V-cycle ----
        for lev in range(n_levels - 1):
            level = levels[lev]
            tau = level.tau if lev > 0 else None
            if config.trace:
                yield comm.annotate(f"begin:sweep:L{lev}:k{k}")
            for s in range(level.spec.sweeps):
                pass_u0 = level.u0 if (s == 0 and level.u0_dirty) else None
                level.U, level.F = yield from level.sweeper.sweep_gen(
                    t_slice, dt, level.U, level.F,
                    u0=pass_u0, tau=tau, space=space, dispatch=dispatch,
                )
            level.u0_dirty = False
            if config.trace:
                yield comm.annotate(f"end:sweep:L{lev}:k{k}")
            if rank < p_time - 1:
                yield comm.send(
                    rank + 1, (tags.LVL, block, attempt, lev, k),
                    level.end_value,
                )
            # restrict and compute FAS for the next level down
            if config.trace:
                yield comm.annotate(f"begin:restrict:L{lev}:k{k}")
            tr = transfers[lev]
            coarse = levels[lev + 1]
            coarse.U = tr.restrict_nodes(level.U)
            coarse.U_at_restriction = coarse.U.copy()
            coarse.u0 = tr.restrict_state(level.u0)
            coarse.F = yield from _evaluate_all(coarse, t_slice, dt, space, dispatch)
            coarse.F_at_restriction = coarse.F.copy()
            coarse.tau = fas_correction(
                dt, tr, level.F, coarse.F,
                tau_fine=level.tau if lev > 0 else None,
            )
            if config.trace:
                yield comm.annotate(f"end:restrict:L{lev}:k{k}")

        # ---- coarsest level ----
        if rank > 0:
            coarsest.u0 = yield comm.recv(
                rank - 1, (tags.LVL, block, attempt, n_levels - 1, k),
                timeout=rt, retries=rr,
            )
        else:
            coarsest.u0 = u0_by_level[-1]
        new_u0 = coarsest.u0
        if config.trace:
            yield comm.annotate(f"begin:sweep:L{n_levels - 1}:k{k}")
        for s in range(coarsest.spec.sweeps):
            coarsest.U, coarsest.F = yield from coarsest.sweeper.sweep_gen(
                t_slice, dt, coarsest.U, coarsest.F,
                u0=new_u0 if s == 0 else None, tau=coarsest.tau, space=space, dispatch=dispatch,
            )
        if config.trace:
            yield comm.annotate(f"end:sweep:L{n_levels - 1}:k{k}")
        if rank < p_time - 1:
            yield comm.send(
                rank + 1, (tags.LVL, block, attempt, n_levels - 1, k),
                coarsest.end_value,
            )

        # ---- up the V-cycle ----
        for lev in range(n_levels - 2, -1, -1):
            if config.trace:
                yield comm.annotate(f"begin:interp:L{lev}:k{k}")
            tr = transfers[lev]
            level, coarse = levels[lev], levels[lev + 1]
            level.U = level.U + tr.interpolate_nodes(
                coarse.U - coarse.U_at_restriction
            )
            if config.reeval_after_interp:
                level.F = yield from _evaluate_all(level, t_slice, dt, space, dispatch)
            else:
                # correct F by the interpolated increment of the
                # coarse evaluations since restriction
                level.F = level.F + tr.interpolate_nodes(
                    coarse.F - coarse.F_at_restriction
                )
            if config.trace:
                yield comm.annotate(f"end:interp:L{lev}:k{k}")
            # new initial value for this level
            if rank > 0:
                recv_u0 = yield comm.recv(
                    rank - 1, (tags.LVL, block, attempt, lev, k),
                    timeout=rt, retries=rr,
                )
                delta0 = coarse.u0 - tr.restrict_state(recv_u0)
                level.u0 = recv_u0 + tr.interpolate_state(delta0)
                level.u0_dirty = True
            else:
                level.u0 = u0_by_level[lev]
            level.U[0] = level.u0
            # intermediate levels sweep once more on the way up
            if 0 < lev:
                pass_u0 = level.u0 if level.u0_dirty else None
                level.U, level.F = yield from level.sweeper.sweep_gen(
                    t_slice, dt, level.U, level.F,
                    u0=pass_u0, tau=level.tau, space=space, dispatch=dispatch,
                )
                level.u0_dirty = False
            elif config.reeval_after_interp and not level.u0_dirty:
                # keep the literal-Algorithm-1 mode's F fully
                # consistent at node 0 as well
                level.F[0] = yield from evaluate_rhs(
                    level.problem, space, t_slice, level.u0,
                    dispatch=dispatch,
                )

        fine = levels[0]
        res = fine.sweeper.residual(dt, fine.U, fine.F, fine.u0)
        if config.trace:
            yield comm.annotate(
                "residual", data={"k": k, "residual": float(res)}
            )
        return res

    def _protocol(gen, what):
        """Escalate a timeout on a protocol collective to a hard error.

        The collectives themselves recover dropped legs by shadow
        retransmission (``retries``); a timeout surfacing here means a
        peer rank crashed *inside* the recovery protocol or a message
        was lost beyond the retransmit budget — both unrecoverable.
        """
        try:
            result = yield from gen
        except RecvTimeout as exc:
            raise RuntimeError(
                f"PFASST recovery protocol failure in {what}: a "
                "collective leg timed out — a peer rank crashed inside "
                "the protocol or a message was lost beyond the "
                f"retransmit budget (retries={rr}); original: {exc}"
            ) from exc
        return result

    def _bump_attempt(attempt, block, failed, phase):
        if attempt + 1 > config.max_restarts:
            raise RuntimeError(
                f"PFASST recovery gave up: block {block} exceeded "
                f"max_restarts={config.max_restarts} (policy "
                f"{config.recovery!r}, last failure in {phase} phase, "
                f"failed ranks {sorted(failed)})"
            )
        return attempt + 1

    def _survivors(failed):
        alive = [r for r in range(p_time) if r not in failed]
        if not alive:
            raise RuntimeError(
                f"PFASST recovery impossible: all {p_time} time ranks "
                f"failed simultaneously"
            )
        return alive

    def _refetch_u_block(failed, block, attempt):
        """Replacement ranks re-fetch the block initial value.

        Every rank participates (it is a broadcast from the lowest
        surviving rank), which doubles as the barrier that keeps the
        recovery lock-step.
        """
        root = _survivors(failed)[0]
        return (
            yield from bcast(
                comm, u_block, root=root, tag=(tags.FTUB, block, attempt),
                timeout=rt, retries=rr,
            )
        )

    def _warm_rebuild(failed, block, attempt, t_slice, u_blk, u0_by_level):
        """Warm restart: rebuild failed ranks from a coarse hand-off.

        The nearest *surviving* left neighbour donates its coarse-level
        slice end value — for a single crash that is exactly the failed
        slice's initial condition; with neighbouring crashes it is an
        earlier-time approximation, still a usable predictor seed.  The
        replacement interpolates it to the fine level, re-restricts,
        spread-initialises the coarsest level and runs predictor-quality
        coarse sweeps before rejoining the V-cycle.  Survivors keep all
        their state.  Returns the (possibly rebuilt) ``u0_by_level``.
        """
        alive = _survivors(failed)
        if rank not in failed:
            for f in failed:
                donors = [r for r in alive if r < f]
                if donors and rank == donors[-1]:
                    yield comm.send(
                        f, (tags.FTWARM, block, attempt, f), coarsest.end_value
                    )
            return u0_by_level
        # --- this rank is the replacement: rebuild from scratch ---
        donors = [r for r in alive if r < rank]
        if donors:
            v = yield comm.recv(
                donors[-1], (tags.FTWARM, block, attempt, rank),
                timeout=rt, retries=rr,
            )
            for tr in reversed(transfers):
                v = tr.interpolate_state(v)
            u0_new = v
        else:
            # no live rank to the left: this is the block's first slice,
            # whose initial condition is the (re-fetched) block value
            u0_new = u_blk.copy()
        for lv in levels:
            lv.reset()
        u0s = [u0_new]
        for tr in transfers:
            u0s.append(tr.restrict_state(u0s[-1]))
        coarsest.u0 = u0s[-1]
        coarsest.U, coarsest.F = yield from coarsest.sweeper.initialize_gen(
            t_slice, dt, coarsest.u0, "spread", space=space, dispatch=dispatch
        )
        if config.trace:
            yield comm.annotate("begin:warm-rebuild")
        for s in range(coarsest.spec.sweeps):
            coarsest.U, coarsest.F = yield from coarsest.sweeper.sweep_gen(
                t_slice, dt, coarsest.U, coarsest.F,
                u0=coarsest.u0 if s == 0 else None, space=space, dispatch=dispatch,
            )
        if config.trace:
            yield comm.annotate("end:warm-rebuild")
        yield from _interpolate_up(t_slice)
        # rank 0 consumes u0_by_level every iteration; its rebuilt chain
        # descends from u_blk, which is exactly what it must be
        return u0s if rank == 0 else u0_by_level

    # ---- main block loop ----------------------------------------------
    for block in range(n_blocks):
        t_slice = config.t0 + (block * p_time + rank) * dt
        attempt = 0
        iters_attempted = 0
        residuals: List[float] = []
        k_done = 0
        need_predictor = True
        u0_by_level: List[np.ndarray] = []

        while True:  # re-entered on cold restarts
            if need_predictor:
                # restrict the block initial value through the hierarchy
                u0_by_level = [u_block]
                for tr in transfers:
                    u0_by_level.append(tr.restrict_state(u0_by_level[-1]))

                my_crash = False
                timeout_exc: Optional[RecvTimeout] = None
                try:
                    yield from _predictor(block, attempt, t_slice, u0_by_level)
                except RankFailure:
                    if not ft:
                        raise
                    my_crash = True
                except RecvTimeout as exc:
                    if not ft:
                        raise
                    timeout_exc = exc

                if ft:
                    failed = yield from _protocol(allreduce(
                        comm, (rank,) if my_crash else (),
                        op=_merge_ranks, tag=(tags.FTPRED, block, attempt),
                        timeout=ct, retries=rr,
                    ), "predictor status allreduce")
                    if failed:
                        # a predictor-phase loss voids the staircase for
                        # everyone downstream: both policies redo the block
                        attempt = _bump_attempt(
                            attempt, block, failed, "predictor"
                        )
                        recoveries.append({
                            "block": block, "attempt": attempt,
                            "phase": "predictor", "k": None,
                            "policy": config.recovery,
                            "failed_ranks": list(failed),
                        })
                        u_block = yield from _refetch_u_block(
                            failed, block, attempt
                        )
                        if rank in failed:
                            for lv in levels:
                                lv.reset()
                        continue
                    if timeout_exc is not None:
                        raise RuntimeError(
                            "PFASST recovery protocol hole: a receive "
                            "timed out but the status allreduce reports "
                            "no failed rank — a message was lost past its "
                            f"retransmit budget (retries={rr}); original "
                            f"timeout: {timeout_exc}"
                        )
                need_predictor = False
                residuals = []
                k_done = 0
                k = 0

            # -------------------- PFASST iterations --------------------
            finished_block = True
            while k < config.iterations:
                iters_attempted += 1
                my_crash = False
                timeout_exc = None
                res: Optional[float] = None
                try:
                    res = yield from _iteration(
                        block, attempt, k, t_slice, u0_by_level
                    )
                except RankFailure:
                    if not ft:
                        raise
                    my_crash = True
                except RecvTimeout as exc:
                    if not ft:
                        raise
                    timeout_exc = exc

                if ft:
                    status = (
                        (rank,) if my_crash else (),
                        float("inf") if res is None else res,
                    )
                    failed, worst = yield from _protocol(allreduce(
                        comm, status,
                        op=_merge_status, tag=(tags.FTSYNC, block, attempt, k),
                        timeout=ct, retries=rr,
                    ), "iteration status allreduce")
                    if failed:
                        attempt = _bump_attempt(
                            attempt, block, failed, "iteration"
                        )
                        recoveries.append({
                            "block": block, "attempt": attempt,
                            "phase": "iteration", "k": k,
                            "policy": config.recovery,
                            "failed_ranks": list(failed),
                        })
                        u_block = yield from _refetch_u_block(
                            failed, block, attempt
                        )
                        if config.recovery == "cold-restart":
                            if rank in failed:
                                for lv in levels:
                                    lv.reset()
                            need_predictor = True
                            finished_block = False
                            break  # back out to redo the whole block
                        # warm restart: rebuild the lost ranks in place,
                        # then redo iteration k under the new attempt
                        u0_by_level = yield from _warm_rebuild(
                            failed, block, attempt, t_slice, u_block,
                            u0_by_level,
                        )
                        continue
                    if timeout_exc is not None:
                        raise RuntimeError(
                            "PFASST recovery protocol hole: a receive "
                            "timed out but the status allreduce reports "
                            "no failed rank — a message was lost past its "
                            f"retransmit budget (retries={rr}); original "
                            f"timeout: {timeout_exc}"
                        )

                residuals.append(res)
                k_done = k + 1
                if config.residual_tol is not None:
                    if not ft:
                        # the ftsync allreduce already carried the
                        # residual when recovery is on
                        worst = yield from _protocol(allreduce(
                            comm, residuals[-1], op=max,
                            tag=(tags.RTOL, block, attempt, k),
                            timeout=ct, retries=rr,
                        ), "residual allreduce")
                    if worst <= config.residual_tol:
                        break
                k += 1

            if finished_block:
                break

        iterations_done.append(k_done)
        total_iterations.append(iters_attempted)
        residual_history = [residuals]  # keep the last block's history

        # chain blocks: broadcast the final slice's end value
        u_block = yield from _protocol(bcast(
            comm, levels[0].end_value, root=p_time - 1,
            tag=(tags.BLOCKEND, block, attempt),
            timeout=ct, retries=rr,
        ), "block-end broadcast")

    return {
        "rank": rank,
        "end_value": levels[0].end_value,
        "block_end": u_block,
        "residuals": residual_history[0] if residual_history else [],
        "iterations_done": iterations_done,
        "total_iterations": total_iterations,
        "recoveries": recoveries,
    }


def _evaluate_all(
    level: Level, t_slice: float, dt: float,
    space: Optional[VirtualComm] = None,
    dispatch: Optional[DispatchContext] = None,
) -> Generator[Any, Any, np.ndarray]:
    """Evaluate the level's RHS at every collocation node (generator)."""
    times = level.sweeper.node_times(t_slice, dt)
    F = []
    for t, u in zip(times, level.U):
        F.append((yield from evaluate_rhs(
            level.problem, space, t, u, dispatch=dispatch
        )))
    return np.stack(F, axis=0)


def _grid_rank_program(
    comm: VirtualComm,
    config: PfasstConfig,
    specs: Sequence[LevelSpec],
    u0: np.ndarray,
    spatial: Optional[Sequence[SpatialTransfer]],
    grid: SpaceTimeGrid,
    dispatch: Optional[DispatchContext] = None,
) -> Generator[Any, Any, Dict[str, Any]]:
    """Rank program for the full P_T x P_S grid (paper Fig. 2).

    Splits the world into this rank's space row and time column, runs
    :func:`pfasst_rank_program` over the time communicator with the space
    communicator sharding every RHS, then cross-checks that all space
    ranks of the row hold bitwise-identical end values.
    """
    t_idx, s_idx = grid.coords(comm.rank)
    space = yield from comm.split(color=t_idx, key=s_idx)
    tcomm = yield from comm.split(color=s_idx, key=t_idx)
    result = yield from pfasst_rank_program(
        tcomm, config, specs, u0, spatial, space=space, dispatch=dispatch
    )
    # every member of a space row drives identical time logic over
    # identical full states, so end values must agree *bitwise* — any
    # divergence means the space collective leaked rank-dependent data
    digest = hashlib.blake2b(
        np.ascontiguousarray(result["end_value"]).tobytes(), digest_size=16
    ).hexdigest()
    digests = yield from allgather(space, digest, tag=tags.SPACE_DIGEST)
    if len(set(digests)) != 1:
        raise RuntimeError(
            f"space row {t_idx} diverged across its {space.size} ranks: "
            f"end-value digests {digests}"
        )
    result["space_rank"] = s_idx
    result["world_rank"] = comm.rank
    return result


def _collect_evaluator_stats(
    specs: Sequence[LevelSpec],
) -> List[Dict[str, int]]:
    """RHS-call counts and tree-cache counters per level spec.

    Note that ``run_pfasst`` instantiates one :class:`Level` hierarchy per
    rank program around the *shared* spec problems, so the counters
    aggregate over all ranks — which is exactly the total-work view the
    benchmarks need.
    """
    out: List[Dict[str, int]] = []
    for spec in specs:
        entry: Dict[str, int] = {}
        evaluator = getattr(spec.problem, "evaluator", None)
        if evaluator is not None:
            entry["calls"] = int(getattr(evaluator, "calls", 0))
            cache_stats = getattr(evaluator, "cache_stats", None)
            if cache_stats is not None:
                entry.update(cache_stats.as_dict())
        out.append(entry)
    return out


def run_pfasst(
    config: PfasstConfig,
    specs: Sequence[LevelSpec],
    u0: np.ndarray,
    p_time: int,
    cost_model: Optional[CommCostModel] = None,
    measure_compute: bool = False,
    spatial: Optional[Sequence[SpatialTransfer]] = None,
    verify: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    service_order: str = "ascending",
    tracer: Optional[Tracer] = None,
    p_space: int = 1,
    executor: Optional[ExecutionBackend] = None,
    certify: bool = False,
) -> PfasstResult:
    """Execute PFASST with ``p_time`` simulated time ranks.

    ``p_space > 1`` runs the full ``p_time x p_space`` space-time grid
    (paper Fig. 2): the scheduler world holds ``p_time * p_space`` ranks,
    each splitting into its space row and time column, with every RHS
    evaluation sharded over the row (requires problems whose evaluator is
    a :class:`repro.tree.parallel.SpaceParallelTreeEvaluator`; other
    problems silently fall back to redundant serial evaluation).  The
    numerics are identical to ``p_space=1`` up to floating-point
    accumulation order (the run cross-checks that all space columns agree
    bitwise with each other).  Fault injection is only supported at
    ``p_space=1`` — the recovery protocol reasons about time ranks.

    Set ``measure_compute=True`` (and a cost model) for speedup studies;
    leave it off for pure accuracy experiments, where virtual time is
    irrelevant and scheduling overhead should be minimal.
    ``verify=True`` re-runs the whole block pipeline under the reversed
    rank-service order and requires byte-identical results (the
    scheduler's race-detector replay; roughly doubles the run time —
    fault injection is replay-stable, so this composes with a plan).
    ``fault_plan`` injects crashes / link faults
    (:mod:`repro.parallel.faults`); pair it with
    ``config.recovery != "fail"`` for the run to survive them.
    ``tracer`` attaches a :class:`repro.obs.Tracer` to the scheduler;
    combined with ``config.trace=True`` the recording carries one
    virtual-time span per predictor step / sweep / restrict / interp
    (with per-iteration residual instants) per rank — export it with
    :func:`repro.obs.export_chrome_trace` or render it with
    ``repro-trace gantt`` to reproduce the paper's Fig. 6.

    ``executor`` selects the *execution backend*
    (:mod:`repro.parallel.executor`): every level problem is registered
    under a ``DispatchContext`` and RHS evaluations become scheduler
    ``Compute`` ops.  With a
    :class:`~repro.parallel.executor.ProcessExecutor` the independent
    evaluations of one scheduling round run concurrently on real cores;
    the numerics, message stream and (``measure_compute=False``) virtual
    clocks are byte-identical to :class:`~repro.parallel.executor.
    SerialExecutor` and to ``executor=None``.  One caveat:
    ``evaluator_stats`` counts RHS calls in the *driver* process, so
    under a process backend the dispatched calls land in the workers and
    the driver-side counters read near zero — use the scheduler metrics
    (``executor.dispatches{...}``) for call accounting instead.

    ``certify=True`` turns on the scheduler's vector-clock instrumentation
    (:mod:`repro.analysis.commgraph`): every message carries the sender's
    clock, deliveries build a happens-before DAG, and the run's
    :class:`~repro.analysis.commgraph.DeterminismCertificate` (digest +
    channel census + any message races) lands in ``result.certificate``
    and in the ``comm.certificate`` metric.  Combined with ``verify=True``
    the replay's digest must match or the run fails.
    """
    check_positive("p_time", p_time)
    check_positive("p_space", p_space)
    if p_space > 1 and fault_plan is not None:
        raise ValueError(
            "fault injection is not supported on the space-time grid; "
            "run with p_space=1"
        )
    scheduler = Scheduler(
        p_time * p_space, cost_model=cost_model,
        measure_compute=measure_compute,
        verify=verify, fault_plan=fault_plan, service_order=service_order,
        tracer=tracer, executor=executor, certify=certify,
    )
    dispatch: Optional[DispatchContext] = None
    if executor is not None:
        dispatch = DispatchContext(executor)
        for i, spec in enumerate(specs):
            dispatch.register(f"level{i}", spec.problem)
    if p_space > 1:
        grid = SpaceTimeGrid(p_time, p_space)
        results = scheduler.run(
            _grid_rank_program,
            args=(config, specs, np.asarray(u0), spatial, grid, dispatch),
        )
        # all space columns are bitwise-identical (checked inside the
        # program); report the s=0 column as the canonical one
        results = [r for r in results if r["space_rank"] == 0]
    else:
        results = scheduler.run(
            pfasst_rank_program,
            args=(config, specs, np.asarray(u0), spatial, None, dispatch),
        )
    by_rank = sorted(results, key=lambda r: r["rank"])
    return PfasstResult(
        u_end=by_rank[-1]["end_value"],
        slice_end_values=[r["end_value"] for r in by_rank],
        residuals=[r["residuals"] for r in by_rank],
        clocks=list(scheduler.clocks),
        iterations_done=by_rank[0]["iterations_done"],
        trace=list(scheduler.trace),
        evaluator_stats=_collect_evaluator_stats(specs),
        total_iterations=by_rank[0]["total_iterations"],
        recoveries=by_rank[0]["recoveries"],
        resilience=scheduler.resilience,
        metrics=scheduler.metrics.as_dict(),
        certificate=scheduler.certificate,
    )
