"""The PFASST controller (paper Sec. III-B-3, Algorithm 1, Fig. 6).

The algorithm is written once, as a *rank program* for the simulated MPI
scheduler (:mod:`repro.parallel.simmpi`): ``P_T`` ranks each own one time
slice per block, sweep SDC on a level hierarchy, and exchange slice
boundary values with their neighbours.  Running the program under the
scheduler yields both the numerics (identical regardless of the timing
model) and per-rank virtual wall-clocks for the speedup studies (Fig. 8).

Structure per block:

1. **Predictor** — staggered coarse sweeps: rank ``n`` performs ``n + 1``
   coarse sweeps, receiving an updated initial value from rank ``n - 1``
   before each sweep after the first (the staircase of Fig. 6, same
   aggregate cost as one serial coarse sweep per slice).  The result is
   interpolated up through the hierarchy.
2. **Iterations** — each iteration runs Algorithm 1's V-cycle:
   going *down*: sweep, send the slice end value forward, restrict,
   compute the FAS correction; at the *coarsest* level: receive the new
   initial value, sweep, send forward; going *up*: add the interpolated
   coarse correction, re-evaluate, receive the new fine initial value and
   apply the interpolated initial-value correction.

Multi-block runs chain blocks by broadcasting the last slice's end value.

Fault tolerance (``config.recovery``): the PFASST iteration is naturally
resilient — the coarse level carries a usable copy of the solution — so a
rank lost to a simulated hard fault (:mod:`repro.parallel.faults`) can be
recovered *algorithmically* instead of by global checkpoint-restart:

* ``"fail"`` (default) — no recovery protocol; a crash kills the run
  exactly as before this subsystem existed.  The message pattern is
  byte-identical to the fault-free controller.
* ``"cold-restart"`` — all ranks abandon the current block and re-run its
  predictor from the block initial value (which the replacement rank
  re-fetches from a surviving rank).
* ``"warm-restart"`` — only the lost rank rebuilds: its left neighbour
  sends the *coarse-level* end value (the paper's "less accurate but
  usable copy"), the replacement interpolates it to the fine level, runs
  predictor-quality coarse sweeps, and iterating continues; surviving
  ranks keep their state, so reconvergence needs fewer extra iterations
  than a cold restart.

With recovery enabled, every iteration ends in a small status allreduce
(crash detection is collective) and neighbour receives carry a timeout so
a dead sender surfaces as a :class:`~repro.parallel.faults.RecvTimeout`
instead of a deadlock.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.tracer import Tracer
from repro.parallel import tags
from repro.parallel.collectives import allgather, allreduce, bcast
from repro.parallel.executor import DispatchContext, ExecutionBackend
from repro.parallel.faults import FaultPlan, RankFailure, RecvTimeout
from repro.parallel.simmpi import (
    CommCostModel,
    EpochComm,
    Scheduler,
    VirtualComm,
)
from repro.parallel.topology import SpaceTimeGrid, SpaceTimeNodeGrid
from repro.pfasst.checkpoint import (
    RunCheckpoint,
    RunCheckpointer,
    adopt_levels,
    snapshot_levels,
)
from repro.pfasst.fas import fas_correction
from repro.pfasst.level import Level, LevelSpec
from repro.pfasst.transfer import SpatialTransfer, TimeSpaceTransfer
from repro.sdc.sweeper import evaluate_node_values, evaluate_rhs
from repro.utils.validation import check_positive

__all__ = [
    "PfasstConfig",
    "PfasstResult",
    "RECOVERY_POLICIES",
    "run_pfasst",
    "pfasst_rank_program",
]

RECOVERY_POLICIES = ("fail", "cold-restart", "warm-restart")


@dataclass(frozen=True)
class PfasstConfig:
    """Run parameters for PFASST over ``[t0, t_end]``.

    ``PFASST(X, Y, P_T)`` in the paper's notation maps to ``iterations=X``,
    coarsest level ``sweeps=Y``, and ``p_time=P_T`` scheduler ranks.
    """

    t0: float
    t_end: float
    n_steps: int
    iterations: int
    #: When True, recompute F after every interpolation (the literal
    #: ``FEval`` of the paper's Algorithm 1 listing).  The default False
    #: corrects F by interpolating the *coarse F increment* instead —
    #: the practice of production PFASST codes, saving one full set of
    #: fine evaluations per iteration at no cost to the fixed point
    #: (both variants converge to the fine collocation solution; the
    #: ablation benchmark compares them).
    reeval_after_interp: bool = False
    #: optional residual-based early stopping (adds one allreduce/iteration)
    residual_tol: Optional[float] = None
    #: record begin/end annotations for every sweep on the scheduler's
    #: trace — enables schedule diagrams like the paper's Fig. 6
    trace: bool = False
    #: crash-recovery policy: ``"fail"`` (no protocol, byte-identical to
    #: the pre-fault-tolerance controller), ``"cold-restart"`` (redo the
    #: block from its predictor) or ``"warm-restart"`` (rebuild only the
    #: lost rank from a neighbour's coarse solution)
    recovery: str = "fail"
    #: virtual-time timeout on neighbour receives when recovery is on —
    #: lazy semantics: it only ever fires at a global stall, so any value
    #: works and it never expires spuriously (see simmpi docs)
    recovery_timeout: float = 0.05
    #: link-layer retransmits per receive before a timeout/corruption is
    #: escalated to the recovery protocol
    recovery_retries: int = 1
    #: restarts allowed per block before the run gives up
    max_restarts: int = 3

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if not self.t_end > self.t0:
            raise ValueError(f"t_end {self.t_end} must be > t0 {self.t0}")
        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_POLICIES}, "
                f"got {self.recovery!r}"
            )
        if not self.recovery_timeout > 0:
            raise ValueError(
                f"recovery_timeout must be > 0, got {self.recovery_timeout}"
            )
        if self.recovery_retries < 0:
            raise ValueError(
                f"recovery_retries must be >= 0, got {self.recovery_retries}"
            )
        if self.max_restarts < 1:
            raise ValueError(
                f"max_restarts must be >= 1, got {self.max_restarts}"
            )

    @property
    def dt(self) -> float:
        return (self.t_end - self.t0) / self.n_steps


@dataclass
class PfasstResult:
    """Outcome of a PFASST run."""

    u_end: np.ndarray
    #: slice end values of the final block, one per time rank
    slice_end_values: List[np.ndarray]
    #: fine-level residual history: residuals[rank][iteration] (last block)
    residuals: List[List[float]]
    #: virtual wall-clock per rank (seconds)
    clocks: List[float]
    #: iterations actually performed per block (== config.iterations unless
    #: residual_tol triggered early exit)
    iterations_done: List[int] = field(default_factory=list)
    #: annotated schedule events when ``config.trace`` was set
    trace: List[Any] = field(default_factory=list)
    #: per-level evaluator bookkeeping (RHS calls, tree-cache hit/miss
    #: counters) sampled from the level specs after the run; empty dicts
    #: for problems without an instrumented evaluator
    evaluator_stats: List[Dict[str, int]] = field(default_factory=list)
    #: V-cycle iterations *attempted* per block, including iterations
    #: discarded by a restart — ``total_iterations[b] -
    #: iterations_done[b]`` is the algorithmic recovery overhead
    total_iterations: List[int] = field(default_factory=list)
    #: one entry per recovery action the protocol took (block, attempt,
    #: phase, iteration, policy, failed ranks)
    recoveries: List[Dict[str, Any]] = field(default_factory=list)
    #: the scheduler's :class:`~repro.parallel.faults.ResilienceReport`
    #: (``None``-ish/empty when no fault plan was active)
    resilience: Optional[Any] = None
    #: snapshot of the scheduler's metrics registry (``mpi.messages`` /
    #: ``mpi.bytes`` globally and per rank pair, ``mpi.retransmissions``)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: the run's :class:`repro.analysis.commgraph.DeterminismCertificate`
    #: when ``certify=True`` was requested; ``None`` otherwise
    certificate: Optional[Any] = None

    @property
    def makespan(self) -> float:
        return max(self.clocks) if self.clocks else 0.0

    @property
    def recovery_iterations(self) -> int:
        """Total iterations spent on recovery across all blocks."""
        return sum(self.total_iterations) - sum(self.iterations_done)


def _build_levels(
    specs: Sequence[LevelSpec], spatial: Optional[Sequence[SpatialTransfer]]
) -> tuple[List[Level], List[TimeSpaceTransfer]]:
    if len(specs) < 2:
        raise ValueError("PFASST needs at least 2 levels (fine + coarse)")
    levels = [Level(spec) for spec in specs]
    transfers = []
    for i in range(len(levels) - 1):
        spatial_i = spatial[i] if spatial is not None else None
        transfers.append(
            TimeSpaceTransfer(levels[i].rule, levels[i + 1].rule, spatial_i)
        )
    return levels, transfers


def _merge_ranks(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    """Allreduce op combining failed-rank sets (commutative, associative)."""
    return tuple(sorted(set(a) | set(b)))


def _merge_status(a, b):
    """Combine per-rank ``(failed_ranks, residual)`` iteration statuses.

    Piggybacking the residual on the failure-detection allreduce keeps
    fault-tolerant runs at *one* collective per iteration (instead of a
    status sync plus a separate ``residual_tol`` reduction) — and, more
    importantly, keeps the separate reduction out of the unrecoverable
    window: a crash during a collective is fatal, so fewer collectives
    mean fewer ops where a crash cannot be recovered.
    """
    return (_merge_ranks(a[0], b[0]), max(a[1], b[1]))


@dataclass
class _GridRecovery:
    """Grid-recovery context threaded into :func:`pfasst_rank_program`.

    Present only when ``p_space > 1`` (or ``p_nodes > 1``) and a recovery
    policy is active: failure detection then runs over the *world*
    communicator (a crash in one space column must be visible to every
    column — the columns share space-row collectives), and all space
    traffic flows through an :class:`~repro.parallel.simmpi.EpochComm`
    whose epoch the controller bumps on every restart, orphaning
    in-flight ring messages from the aborted attempt.

    ``grid`` may be a :class:`SpaceTimeGrid` or a
    :class:`SpaceTimeNodeGrid` — the protocol only needs ``coords``
    (time slice first) and ``time_row``.  ``space`` is the comm the
    row-resync broadcast runs over (the whole time-slice plane on the
    3D grid) and ``row_index`` this rank's position in
    ``grid.time_row(t_idx)`` (defaults to ``s_idx``, the 2D layout).
    ``epoch_comms`` lists further epoch-tagged comms (the 3D grid's
    evaluation-space and node comms) bumped alongside ``space`` by
    :meth:`bump`.
    """

    world: VirtualComm
    grid: Any
    space: EpochComm
    t_idx: int
    s_idx: int
    row_index: Optional[int] = None
    epoch_comms: Tuple[EpochComm, ...] = ()

    @property
    def row_pos(self) -> int:
        """This rank's index within ``grid.time_row(t_idx)``."""
        return self.s_idx if self.row_index is None else self.row_index

    def bump(self) -> None:
        """Advance every epoch comm, orphaning the aborted attempt."""
        self.space.epoch += 1
        for c in self.epoch_comms:
            c.epoch += 1


def pfasst_rank_program(
    comm: VirtualComm,
    config: PfasstConfig,
    specs: Sequence[LevelSpec],
    u0: np.ndarray,
    spatial: Optional[Sequence[SpatialTransfer]] = None,
    space: Optional[VirtualComm] = None,
    dispatch: Optional[DispatchContext] = None,
    ft_grid: Optional[_GridRecovery] = None,
    checkpointer: Optional[RunCheckpointer] = None,
    resume: Optional[RunCheckpoint] = None,
    node: Optional[VirtualComm] = None,
) -> Generator[Any, Any, Dict[str, Any]]:
    """Rank program executing PFASST on one time rank.

    Yields simulated-MPI operations; returns a dict with the rank's end
    value, residual history and bookkeeping.

    ``space`` optionally attaches a space communicator (a row of the
    paper's Fig. 2 grid, typically from ``comm.split``): every RHS
    evaluation is then driven collectively over its ranks via
    :func:`repro.sdc.sweeper.evaluate_rhs`, sharding the tree work while
    keeping the time algorithm — and, without a live ``space``, the op
    stream — unchanged.

    ``dispatch`` routes RHS evaluations of problems registered with the
    scheduler's execution backend through ``Compute`` ops (see
    :mod:`repro.parallel.executor`): independent evaluations across time
    ranks — and, on the grid, the per-row far/near tree segments — then
    run concurrently on real cores under a process backend, while the
    time algorithm, the message pattern and (with ``measure_compute``
    off) the virtual clocks stay byte-identical.

    With ``config.recovery != "fail"`` the program survives injected rank
    crashes (:class:`~repro.parallel.faults.RankFailure` thrown at an op
    boundary) during the predictor or a V-cycle iteration: failure
    detection is collective (a status allreduce after each phase), the
    block ``attempt`` counter is bumped into every message tag so stale
    messages from the abandoned phase can never be mistaken for live
    traffic, and the failed rank rebuilds per the policy.  A crash that
    lands *inside* the recovery protocol itself (status allreduce, block
    refetch, donor hand-off, block-end broadcast) is fatal — the same
    caveat a real fault-tolerant MPI has when the recovery collective
    itself fails.

    ``ft_grid`` (set by :func:`_grid_rank_program` when a recovery
    policy is active at ``p_space > 1``) extends the protocol to the
    whole grid: detection collectives run over the *world* communicator
    (a space rank's crash must be visible to every column), warm
    restarts bitwise-resync every space row from its lowest surviving
    member before column donors rebuild fully-lost rows, and the space
    comm's epoch is bumped on each restart so in-flight ring traffic
    from the aborted attempt is orphaned.

    ``node`` optionally attaches a PFASST-ER node communicator (one per
    time-space cell of the 3D grid): multi-node RHS evaluation rounds —
    the diagonal sweeper's inner/final rounds and the controller's
    restriction/interpolation re-evaluations — then shard the collocation
    nodes over its ranks and reassemble ``F`` with a ring allgather
    (:func:`repro.sdc.sweeper.evaluate_node_values`).  The sharding is
    bitwise-neutral: each node's RHS is computed exactly once, on one
    rank, from the same inputs, so a ``node`` of size 1 (or ``None``)
    and any ``p_nodes > 1`` agree bitwise under the Gauss-Seidel
    sweeper.

    ``checkpointer`` / ``resume`` attach durable checkpoint/restart
    (:mod:`repro.pfasst.checkpoint`): contributions are plain in-process
    calls after each iteration — zero extra ops, so the op stream stays
    byte-identical — and a resumed program jumps to the checkpointed
    block, adopts the level state bitwise and continues at iteration
    ``k + 1``, reproducing the uninterrupted run exactly.
    """
    rank, p_time = comm.rank, comm.size
    if config.n_steps % p_time != 0:
        raise ValueError(
            f"n_steps={config.n_steps} must be a multiple of p_time={p_time}"
        )
    n_blocks = config.n_steps // p_time
    dt = config.dt
    levels, transfers = _build_levels(specs, spatial)
    n_levels = len(levels)
    coarsest = levels[-1]
    for lv in levels:
        lv._dt = dt

    ft = config.recovery != "fail"
    # with recovery off these defaults make every Recv op byte-identical
    # to the pre-fault-tolerance controller
    rt = config.recovery_timeout if ft else None
    rr = config.recovery_retries if ft else 0
    # protocol collectives (status allreduces, block-end broadcast) use a
    # longer timeout than the neighbour detection receives: a dropped
    # collective leg still recovers by shadow retransmit, but at a crash
    # stall the scheduler expires the *shortest* timeout first, so the
    # neighbour receive — whose RecvTimeout the program catches — always
    # fires before a collective leg, which cannot catch it
    ct = rt * 8 if ft else None
    # grid-wide recovery: detection collectives run over the world comm
    # (a space rank's crash must be visible to every column); at
    # p_space=1 ``detect`` is the time comm and ``me`` the time rank, so
    # the op stream is byte-identical to the time-only controller
    detect = ft_grid.world if ft_grid is not None else comm
    me = detect.rank

    u_block = np.asarray(u0, dtype=np.float64).copy()
    residual_history: List[List[float]] = []
    iterations_done: List[int] = []
    total_iterations: List[int] = []
    recoveries: List[Dict[str, Any]] = []

    # ---- helpers (closures over the hierarchy) -------------------------
    def _sweep_u0(level, explicit):
        """The ``u0`` a sweep call must carry.

        The controller's sites pass ``None`` whenever node 0 already
        holds the current initial value — correct for the Gauss-Seidel
        sweeper on left-including families (and byte-identical to the
        historical call pattern).  Sweepers that *need* ``u0`` on every
        call (diagonal sweeper; Gauss-Seidel on non-left families,
        where node 0 is a genuine unknown) get the level's tracked
        initial value instead.
        """
        if explicit is not None:
            return explicit
        return level.u0 if level.sweeper.needs_u0 else None

    def _interpolate_up(t_slice: float):
        """Fill the finer levels from the coarsest (predictor epilogue)."""
        for lev in range(n_levels - 2, -1, -1):
            tr = transfers[lev]
            fine, coarse = levels[lev], levels[lev + 1]
            fine.U = tr.interpolate_nodes(coarse.U)
            if fine.rule.node_set.includes_left:
                fine.u0 = fine.U[0].copy()
            else:
                # node 0 is interior: the initial value is not a node
                # value, interpolate it from the coarse level's directly
                fine.u0 = tr.interpolate_state(coarse.u0)
            # interpolated F[0] is approximate: the next sweep must
            # re-evaluate it from u0 (dirty flag)
            fine.u0_dirty = True
            if config.reeval_after_interp:
                fine.F = yield from _evaluate_all(fine, t_slice, dt, space, dispatch, node)
            else:
                fine.F = tr.interpolate_nodes(coarse.F)
            fine.tau = None

    def _predictor(block, attempt, t_slice, u0_by_level):
        coarsest.u0 = u0_by_level[-1]
        coarsest.U, coarsest.F = yield from coarsest.sweeper.initialize_gen(
            t_slice, dt, coarsest.u0, "spread", space=space, dispatch=dispatch,
            node=node,
        )
        for j in range(rank + 1):
            new_u0 = None
            if j > 0:
                new_u0 = yield comm.recv(
                    rank - 1, (tags.PRED, block, attempt, j),
                    timeout=rt, retries=rr,
                )
                coarsest.u0 = new_u0
            if config.trace:
                yield comm.annotate(f"begin:predict:{j}")
            coarsest.U, coarsest.F = yield from coarsest.sweeper.sweep_gen(
                t_slice, dt, coarsest.U, coarsest.F,
                u0=_sweep_u0(coarsest, new_u0), space=space, dispatch=dispatch,
                node=node,
            )
            if config.trace:
                yield comm.annotate(f"end:predict:{j}")
            if rank < p_time - 1:
                yield comm.send(
                    rank + 1, (tags.PRED, block, attempt, j + 1),
                    coarsest.end_value,
                )
        # interpolate the predicted solution up through the hierarchy
        yield from _interpolate_up(t_slice)

    def _iteration(block, attempt, k, t_slice, u0_by_level):
        """One V-cycle; returns the fine-level residual."""
        # ---- down the V-cycle ----
        for lev in range(n_levels - 1):
            level = levels[lev]
            tau = level.tau if lev > 0 else None
            if config.trace:
                yield comm.annotate(f"begin:sweep:L{lev}:k{k}")
            for s in range(level.spec.sweeps):
                pass_u0 = level.u0 if (s == 0 and level.u0_dirty) else None
                level.U, level.F = yield from level.sweeper.sweep_gen(
                    t_slice, dt, level.U, level.F,
                    u0=_sweep_u0(level, pass_u0), tau=tau, space=space,
                    dispatch=dispatch, node=node,
                )
            level.u0_dirty = False
            if config.trace:
                yield comm.annotate(f"end:sweep:L{lev}:k{k}")
            if rank < p_time - 1:
                yield comm.send(
                    rank + 1, (tags.LVL, block, attempt, lev, k),
                    level.end_value,
                )
            # restrict and compute FAS for the next level down
            if config.trace:
                yield comm.annotate(f"begin:restrict:L{lev}:k{k}")
            tr = transfers[lev]
            coarse = levels[lev + 1]
            coarse.U = tr.restrict_nodes(level.U)
            coarse.U_at_restriction = coarse.U.copy()
            coarse.u0 = tr.restrict_state(level.u0)
            coarse.F = yield from _evaluate_all(coarse, t_slice, dt, space, dispatch, node)
            coarse.F_at_restriction = coarse.F.copy()
            coarse.tau = fas_correction(
                dt, tr, level.F, coarse.F,
                tau_fine=level.tau if lev > 0 else None,
            )
            if config.trace:
                yield comm.annotate(f"end:restrict:L{lev}:k{k}")

        # ---- coarsest level ----
        if rank > 0:
            coarsest.u0 = yield comm.recv(
                rank - 1, (tags.LVL, block, attempt, n_levels - 1, k),
                timeout=rt, retries=rr,
            )
        else:
            coarsest.u0 = u0_by_level[-1]
        new_u0 = coarsest.u0
        if config.trace:
            yield comm.annotate(f"begin:sweep:L{n_levels - 1}:k{k}")
        for s in range(coarsest.spec.sweeps):
            coarsest.U, coarsest.F = yield from coarsest.sweeper.sweep_gen(
                t_slice, dt, coarsest.U, coarsest.F,
                u0=_sweep_u0(coarsest, new_u0 if s == 0 else None),
                tau=coarsest.tau, space=space, dispatch=dispatch, node=node,
            )
        if config.trace:
            yield comm.annotate(f"end:sweep:L{n_levels - 1}:k{k}")
        if rank < p_time - 1:
            yield comm.send(
                rank + 1, (tags.LVL, block, attempt, n_levels - 1, k),
                coarsest.end_value,
            )

        # ---- up the V-cycle ----
        for lev in range(n_levels - 2, -1, -1):
            if config.trace:
                yield comm.annotate(f"begin:interp:L{lev}:k{k}")
            tr = transfers[lev]
            level, coarse = levels[lev], levels[lev + 1]
            level.U = level.U + tr.interpolate_nodes(
                coarse.U - coarse.U_at_restriction
            )
            if config.reeval_after_interp:
                level.F = yield from _evaluate_all(level, t_slice, dt, space, dispatch, node)
            else:
                # correct F by the interpolated increment of the
                # coarse evaluations since restriction
                level.F = level.F + tr.interpolate_nodes(
                    coarse.F - coarse.F_at_restriction
                )
            if config.trace:
                yield comm.annotate(f"end:interp:L{lev}:k{k}")
            # new initial value for this level
            if rank > 0:
                recv_u0 = yield comm.recv(
                    rank - 1, (tags.LVL, block, attempt, lev, k),
                    timeout=rt, retries=rr,
                )
                delta0 = coarse.u0 - tr.restrict_state(recv_u0)
                level.u0 = recv_u0 + tr.interpolate_state(delta0)
                level.u0_dirty = True
            else:
                level.u0 = u0_by_level[lev]
            if level.rule.node_set.includes_left:
                level.U[0] = level.u0
            # intermediate levels sweep once more on the way up
            if 0 < lev:
                pass_u0 = level.u0 if level.u0_dirty else None
                level.U, level.F = yield from level.sweeper.sweep_gen(
                    t_slice, dt, level.U, level.F,
                    u0=_sweep_u0(level, pass_u0), tau=level.tau, space=space,
                    dispatch=dispatch, node=node,
                )
                level.u0_dirty = False
            elif (config.reeval_after_interp and not level.u0_dirty
                  and level.rule.node_set.includes_left):
                # keep the literal-Algorithm-1 mode's F fully
                # consistent at node 0 as well (node 0 *is* u0 only for
                # left-including families)
                level.F[0] = yield from evaluate_rhs(
                    level.problem, space, t_slice, level.u0,
                    dispatch=dispatch,
                )

        fine = levels[0]
        res = fine.sweeper.residual(dt, fine.U, fine.F, fine.u0)
        if config.trace:
            yield comm.annotate(
                "residual", data={"k": k, "residual": float(res)}
            )
        return res

    def _protocol(gen, what):
        """Escalate a timeout on a protocol collective to a hard error.

        The collectives themselves recover dropped legs by shadow
        retransmission (``retries``); a timeout surfacing here means a
        peer rank crashed *inside* the recovery protocol or a message
        was lost beyond the retransmit budget — both unrecoverable.
        """
        try:
            result = yield from gen
        except RecvTimeout as exc:
            raise RuntimeError(
                f"PFASST recovery protocol failure in {what}: a "
                "collective leg timed out — a peer rank crashed inside "
                "the protocol or a message was lost beyond the "
                f"retransmit budget (retries={rr}); original: {exc}"
            ) from exc
        return result

    def _bump_attempt(attempt, block, failed, phase):
        if attempt + 1 > config.max_restarts:
            raise RuntimeError(
                f"PFASST recovery gave up: block {block} exceeded "
                f"max_restarts={config.max_restarts} (policy "
                f"{config.recovery!r}, last failure in {phase} phase, "
                f"failed ranks {sorted(failed)})"
            )
        return attempt + 1

    def _recovery_entry(block, attempt, phase, k, failed):
        entry = {
            "block": block, "attempt": attempt,
            "phase": phase, "k": k,
            "policy": config.recovery,
            "failed_ranks": list(failed),
        }
        if ft_grid is not None:
            # on the grid ``failed_ranks`` are world ranks; record the
            # affected time slices too
            entry["failed_time_ranks"] = list(_failed_time_ranks(failed))
        return entry

    def _failed_time_ranks(failed):
        """Time ranks touched by a failed world-rank set (grid only)."""
        return tuple(sorted({ft_grid.grid.coords(w)[0] for w in failed}))

    def _fully_dead_rows(failed):
        """Time ranks whose *entire* space row crashed (grid only)."""
        dead = []
        for t in _failed_time_ranks(failed):
            if set(ft_grid.grid.time_row(t)) <= set(failed):
                dead.append(t)
        return tuple(dead)

    def _row_resync(block, attempt, failed):
        """Bitwise-resync this rank's space row after a warm restart.

        Row members abort an interrupted iteration at different receive
        boundaries, so even rows with no crashed member can have
        diverged from each other mid-V-cycle; every row therefore
        adopts the level state of its lowest non-crashed member.  A row
        with *no* surviving member resets instead — it is rebuilt from
        a column donor by ``_warm_rebuild``.  On the 3D grid the "row"
        is the whole time-slice plane (``p_space * p_nodes`` ranks) and
        ``ft_grid.space`` the plane comm.
        """
        row = ft_grid.grid.time_row(ft_grid.t_idx)
        alive_s = [i for i, w in enumerate(row) if w not in failed]
        if not alive_s:
            for lv in levels:
                lv.reset()
            return
        root = alive_s[0]
        blob = snapshot_levels(levels) if ft_grid.row_pos == root else None
        blob = yield from _protocol(bcast(
            ft_grid.space, blob, root=root,
            tag=(tags.FTROW, block, attempt), timeout=rt, retries=rr,
        ), "row-resync broadcast")
        if ft_grid.row_pos != root:
            adopt_levels(levels, blob)

    def _survivors(failed):
        alive = [r for r in range(p_time) if r not in failed]
        if not alive:
            raise RuntimeError(
                f"PFASST recovery impossible: all {p_time} time ranks "
                f"failed simultaneously"
            )
        return alive

    def _refetch_u_block(failed, block, attempt):
        """Replacement ranks re-fetch the block initial value.

        Every rank participates (it is a broadcast from the lowest
        surviving rank of the detection comm — the world comm on the
        grid), which doubles as the barrier that keeps the recovery
        lock-step.
        """
        if ft_grid is not None:
            alive = [r for r in range(detect.size) if r not in failed]
            if not alive:
                raise RuntimeError(
                    f"PFASST recovery impossible: all {detect.size} grid "
                    "ranks failed simultaneously"
                )
            root = alive[0]
        else:
            root = _survivors(failed)[0]
        return (
            yield from bcast(
                detect, u_block, root=root, tag=(tags.FTUB, block, attempt),
                timeout=rt, retries=rr,
            )
        )

    def _warm_rebuild(failed, block, attempt, t_slice, u_blk, u0_by_level):
        """Warm restart: rebuild failed ranks from a coarse hand-off.

        The nearest *surviving* left neighbour donates its coarse-level
        slice end value — for a single crash that is exactly the failed
        slice's initial condition; with neighbouring crashes it is an
        earlier-time approximation, still a usable predictor seed.  The
        replacement interpolates it to the fine level, re-restricts,
        spread-initialises the coarsest level and runs predictor-quality
        coarse sweeps before rejoining the V-cycle.  Survivors keep all
        their state.  Returns the (possibly rebuilt) ``u0_by_level``.
        """
        alive = _survivors(failed)
        if rank not in failed:
            for f in failed:
                donors = [r for r in alive if r < f]
                if donors and rank == donors[-1]:
                    yield comm.send(
                        f, (tags.FTWARM, block, attempt, f), coarsest.end_value
                    )
            return u0_by_level
        # --- this rank is the replacement: rebuild from scratch ---
        donors = [r for r in alive if r < rank]
        if donors:
            v = yield comm.recv(
                donors[-1], (tags.FTWARM, block, attempt, rank),
                timeout=rt, retries=rr,
            )
            for tr in reversed(transfers):
                v = tr.interpolate_state(v)
            u0_new = v
        else:
            # no live rank to the left: this is the block's first slice,
            # whose initial condition is the (re-fetched) block value
            u0_new = u_blk.copy()
        for lv in levels:
            lv.reset()
        u0s = [u0_new]
        for tr in transfers:
            u0s.append(tr.restrict_state(u0s[-1]))
        coarsest.u0 = u0s[-1]
        coarsest.U, coarsest.F = yield from coarsest.sweeper.initialize_gen(
            t_slice, dt, coarsest.u0, "spread", space=space, dispatch=dispatch,
            node=node,
        )
        if config.trace:
            yield comm.annotate("begin:warm-rebuild")
        for s in range(coarsest.spec.sweeps):
            coarsest.U, coarsest.F = yield from coarsest.sweeper.sweep_gen(
                t_slice, dt, coarsest.U, coarsest.F,
                u0=_sweep_u0(coarsest, coarsest.u0 if s == 0 else None),
                space=space, dispatch=dispatch, node=node,
            )
        if config.trace:
            yield comm.annotate("end:warm-rebuild")
        yield from _interpolate_up(t_slice)
        # rank 0 consumes u0_by_level every iteration; its rebuilt chain
        # descends from u_blk, which is exactly what it must be
        return u0s if rank == 0 else u0_by_level

    # ---- resume from a durable checkpoint ------------------------------
    start_block = 0
    if resume is not None:
        start_block = resume.block
        iterations_done = [int(x) for x in resume.iterations_done]
        total_iterations = [int(x) for x in resume.total_iterations]
        recoveries = [dict(r) for r in resume.recoveries]
        u_block = np.array(resume.u_block, dtype=np.float64, copy=True)

    # ---- main block loop ----------------------------------------------
    for block in range(start_block, n_blocks):
        t_slice = config.t0 + (block * p_time + rank) * dt
        attempt = 0
        iters_attempted = 0
        residuals: List[float] = []
        k_done = 0
        k = 0
        need_predictor = True
        u0_by_level: List[np.ndarray] = []

        if resume is not None and block == resume.block:
            # adopt the checkpointed iteration-end state bitwise and
            # skip the predictor: the continuation executes exactly the
            # ops the uninterrupted run would have from iteration k+1 on
            attempt = resume.attempt
            iters_attempted = resume.iters_attempted
            residuals = [float(x) for x in resume.residuals[rank]]
            k_done = resume.k + 1
            k = k_done
            need_predictor = False
            adopt_levels(levels, resume.levels[rank])
            u0_by_level = [u_block]
            for tr in transfers:
                u0_by_level.append(tr.restrict_state(u0_by_level[-1]))

        while True:  # re-entered on cold restarts
            if need_predictor:
                # restrict the block initial value through the hierarchy
                u0_by_level = [u_block]
                for tr in transfers:
                    u0_by_level.append(tr.restrict_state(u0_by_level[-1]))

                my_crash = False
                timeout_exc: Optional[RecvTimeout] = None
                try:
                    yield from _predictor(block, attempt, t_slice, u0_by_level)
                except RankFailure:
                    if not ft:
                        raise
                    my_crash = True
                except RecvTimeout as exc:
                    if not ft:
                        raise
                    timeout_exc = exc

                if ft:
                    failed = yield from _protocol(allreduce(
                        detect, (me,) if my_crash else (),
                        op=_merge_ranks, tag=(tags.FTPRED, block, attempt),
                        timeout=ct, retries=rr,
                    ), "predictor status allreduce")
                    if failed:
                        # a predictor-phase loss voids the staircase for
                        # everyone downstream: both policies redo the block
                        attempt = _bump_attempt(
                            attempt, block, failed, "predictor"
                        )
                        if ft_grid is not None:
                            # orphan in-flight space/node-ring traffic
                            # from the aborted attempt
                            ft_grid.bump()
                        recoveries.append(_recovery_entry(
                            block, attempt, "predictor", None, failed
                        ))
                        u_block = yield from _refetch_u_block(
                            failed, block, attempt
                        )
                        if me in failed:
                            for lv in levels:
                                lv.reset()
                        continue
                    if timeout_exc is not None:
                        raise RuntimeError(
                            "PFASST recovery protocol hole: a receive "
                            "timed out but the status allreduce reports "
                            "no failed rank — a message was lost past its "
                            f"retransmit budget (retries={rr}); original "
                            f"timeout: {timeout_exc}"
                        )
                need_predictor = False
                residuals = []
                k_done = 0
                k = 0

            # -------------------- PFASST iterations --------------------
            finished_block = True
            while k < config.iterations:
                iters_attempted += 1
                my_crash = False
                timeout_exc = None
                res: Optional[float] = None
                try:
                    res = yield from _iteration(
                        block, attempt, k, t_slice, u0_by_level
                    )
                except RankFailure:
                    if not ft:
                        raise
                    my_crash = True
                except RecvTimeout as exc:
                    if not ft:
                        raise
                    timeout_exc = exc

                if ft:
                    status = (
                        (me,) if my_crash else (),
                        float("inf") if res is None else res,
                    )
                    failed, worst = yield from _protocol(allreduce(
                        detect, status,
                        op=_merge_status, tag=(tags.FTSYNC, block, attempt, k),
                        timeout=ct, retries=rr,
                    ), "iteration status allreduce")
                    if failed:
                        attempt = _bump_attempt(
                            attempt, block, failed, "iteration"
                        )
                        if ft_grid is not None:
                            # orphan in-flight space/node-ring traffic
                            # from the aborted attempt
                            ft_grid.bump()
                        recoveries.append(_recovery_entry(
                            block, attempt, "iteration", k, failed
                        ))
                        u_block = yield from _refetch_u_block(
                            failed, block, attempt
                        )
                        if config.recovery == "cold-restart":
                            if me in failed:
                                for lv in levels:
                                    lv.reset()
                            need_predictor = True
                            finished_block = False
                            break  # back out to redo the whole block
                        # warm restart: rebuild the lost ranks in place,
                        # then redo iteration k under the new attempt.
                        # On the grid, first bitwise-resync every space
                        # row (members abort at different points), then
                        # rebuild only rows that lost *all* members —
                        # partially-crashed rows recover via the resync
                        if ft_grid is not None:
                            yield from _row_resync(block, attempt, failed)
                            failed_t = _fully_dead_rows(failed)
                        else:
                            failed_t = tuple(failed)
                        if failed_t:
                            u0_by_level = yield from _warm_rebuild(
                                failed_t, block, attempt, t_slice, u_block,
                                u0_by_level,
                            )
                        continue
                    if timeout_exc is not None:
                        raise RuntimeError(
                            "PFASST recovery protocol hole: a receive "
                            "timed out but the status allreduce reports "
                            "no failed rank — a message was lost past its "
                            f"retransmit budget (retries={rr}); original "
                            f"timeout: {timeout_exc}"
                        )

                residuals.append(res)
                k_done = k + 1
                if config.residual_tol is not None:
                    if not ft:
                        # the ftsync allreduce already carried the
                        # residual when recovery is on
                        worst = yield from _protocol(allreduce(
                            comm, residuals[-1], op=max,
                            tag=(tags.RTOL, block, attempt, k),
                            timeout=ct, retries=rr,
                        ), "residual allreduce")
                    if worst <= config.residual_tol:
                        break
                if checkpointer is not None and checkpointer.wants(k):
                    # plain in-process call — no ops, no clock movement:
                    # attaching a checkpointer keeps the run byte-identical
                    checkpointer.contribute(rank, block, k, attempt, {
                        "u_block": np.array(u_block, copy=True),
                        "levels": snapshot_levels(levels),
                        "residuals": list(residuals),
                        "iterations_done": list(iterations_done),
                        "total_iterations": list(total_iterations),
                        "recoveries": [dict(r) for r in recoveries],
                        "iters_attempted": iters_attempted,
                    })
                k += 1

            if finished_block:
                break

        iterations_done.append(k_done)
        total_iterations.append(iters_attempted)
        residual_history = [residuals]  # keep the last block's history

        # chain blocks: broadcast the final slice's end value
        u_block = yield from _protocol(bcast(
            comm, levels[0].end_value, root=p_time - 1,
            tag=(tags.BLOCKEND, block, attempt),
            timeout=ct, retries=rr,
        ), "block-end broadcast")

    return {
        "rank": rank,
        "end_value": levels[0].end_value,
        "block_end": u_block,
        "residuals": residual_history[0] if residual_history else [],
        "iterations_done": iterations_done,
        "total_iterations": total_iterations,
        "recoveries": recoveries,
    }


def _evaluate_all(
    level: Level, t_slice: float, dt: float,
    space: Optional[VirtualComm] = None,
    dispatch: Optional[DispatchContext] = None,
    node: Optional[VirtualComm] = None,
) -> Generator[Any, Any, np.ndarray]:
    """Evaluate the level's RHS at every collocation node (generator).

    With a live ``node`` comm the nodes shard over its ranks and ``F``
    is reassembled by allgather; without one this is the historical
    plain loop with an identical op stream.
    """
    times = level.sweeper.node_times(t_slice, dt)
    return (yield from evaluate_node_values(
        level.problem, times, level.U, space=space, node=node,
        dispatch=dispatch,
    ))


def _grid_rank_program(
    comm: VirtualComm,
    config: PfasstConfig,
    specs: Sequence[LevelSpec],
    u0: np.ndarray,
    spatial: Optional[Sequence[SpatialTransfer]],
    grid: SpaceTimeGrid,
    dispatch: Optional[DispatchContext] = None,
    checkpointer: Optional[RunCheckpointer] = None,
    resume: Optional[RunCheckpoint] = None,
) -> Generator[Any, Any, Dict[str, Any]]:
    """Rank program for the full P_T x P_S grid (paper Fig. 2).

    Splits the world into this rank's space row and time column, runs
    :func:`pfasst_rank_program` over the time communicator with the space
    communicator sharding every RHS, then cross-checks that all space
    ranks of the row hold bitwise-identical end values.

    With a recovery policy active the space comm is wrapped in an
    :class:`~repro.parallel.simmpi.EpochComm` (restart-safe space
    collectives: default timeouts on every receive, epoch-tagged
    messages that restarts orphan) and a :class:`_GridRecovery` context
    moves failure detection to the world communicator.  Only the
    ``s = 0`` column contributes to a checkpointer — row state is
    replicated bitwise, so one column describes the whole grid.
    """
    t_idx, s_idx = grid.coords(comm.rank)
    space = yield from comm.split(color=t_idx, key=s_idx)
    tcomm = yield from comm.split(color=s_idx, key=t_idx)
    ft_grid = None
    if config.recovery != "fail":
        space = EpochComm(
            space, timeout=config.recovery_timeout,
            retries=config.recovery_retries,
        )
        ft_grid = _GridRecovery(
            world=comm, grid=grid, space=space, t_idx=t_idx, s_idx=s_idx
        )
    result = yield from pfasst_rank_program(
        tcomm, config, specs, u0, spatial, space=space, dispatch=dispatch,
        ft_grid=ft_grid,
        checkpointer=checkpointer if s_idx == 0 else None,
        resume=resume,
    )
    # every member of a space row drives identical time logic over
    # identical full states, so end values must agree *bitwise* — any
    # divergence means the space collective leaked rank-dependent data
    digest = hashlib.blake2b(
        np.ascontiguousarray(result["end_value"]).tobytes(), digest_size=16
    ).hexdigest()
    digests = yield from allgather(space, digest, tag=tags.SPACE_DIGEST)
    if len(set(digests)) != 1:
        raise RuntimeError(
            f"space row {t_idx} diverged across its {space.size} ranks: "
            f"end-value digests {digests}"
        )
    result["space_rank"] = s_idx
    result["world_rank"] = comm.rank
    return result


def _node_grid_rank_program(
    comm: VirtualComm,
    config: PfasstConfig,
    specs: Sequence[LevelSpec],
    u0: np.ndarray,
    spatial: Optional[Sequence[SpatialTransfer]],
    grid: SpaceTimeNodeGrid,
    dispatch: Optional[DispatchContext] = None,
    checkpointer: Optional[RunCheckpointer] = None,
    resume: Optional[RunCheckpoint] = None,
) -> Generator[Any, Any, Dict[str, Any]]:
    """Rank program for the P_T x P_S x P_N grid (PFASST-ER).

    Splits the world into this rank's space row (vary ``s``), time
    column (vary ``t``) and node group (vary ``n``), then runs
    :func:`pfasst_rank_program` over the time comm with the space comm
    sharding tree evaluations and the node comm sharding collocation
    nodes across multi-node evaluation rounds.  All members of a time
    slice drive identical time logic over identical full states, so
    after the run the end values are cross-checked bitwise both across
    the space row and across the node group.

    With a recovery policy active the space and node comms are wrapped
    in :class:`~repro.parallel.simmpi.EpochComm` and a fourth split
    builds the *plane* comm — all ``p_space * p_nodes`` ranks of this
    time slice — which takes the row-resync role ``_row_resync`` plays
    on the 2D grid.  Only the ``(s, n) = (0, 0)`` member of each slice
    contributes to a checkpointer.
    """
    t_idx, s_idx, n_idx = grid.coords(comm.rank)
    space = yield from comm.split(color=(t_idx, n_idx), key=s_idx)
    tcomm = yield from comm.split(color=(s_idx, n_idx), key=t_idx)
    node = yield from comm.split(color=(t_idx, s_idx), key=n_idx)
    ft_grid = None
    if config.recovery != "fail":
        space = EpochComm(
            space, timeout=config.recovery_timeout,
            retries=config.recovery_retries,
        )
        node = EpochComm(
            node, timeout=config.recovery_timeout,
            retries=config.recovery_retries,
        )
        plane = yield from comm.split(
            color=t_idx, key=s_idx * grid.p_nodes + n_idx
        )
        plane = EpochComm(
            plane, timeout=config.recovery_timeout,
            retries=config.recovery_retries,
        )
        ft_grid = _GridRecovery(
            world=comm, grid=grid, space=plane, t_idx=t_idx, s_idx=s_idx,
            row_index=s_idx * grid.p_nodes + n_idx,
            epoch_comms=(space, node),
        )
    result = yield from pfasst_rank_program(
        tcomm, config, specs, u0, spatial,
        space=space if grid.p_space > 1 else None,
        dispatch=dispatch, ft_grid=ft_grid,
        checkpointer=checkpointer if (s_idx == 0 and n_idx == 0) else None,
        resume=resume,
        node=node,
    )
    digest = hashlib.blake2b(
        np.ascontiguousarray(result["end_value"]).tobytes(), digest_size=16
    ).hexdigest()
    if grid.p_space > 1:
        digests = yield from allgather(space, digest, tag=tags.SPACE_DIGEST)
        if len(set(digests)) != 1:
            raise RuntimeError(
                f"space row (t={t_idx}, n={n_idx}) diverged across its "
                f"{space.size} ranks: end-value digests {digests}"
            )
    ndigests = yield from allgather(node, digest, tag=tags.NODE_DIGEST)
    if len(set(ndigests)) != 1:
        raise RuntimeError(
            f"node group (t={t_idx}, s={s_idx}) diverged across its "
            f"{node.size} ranks: end-value digests {ndigests}"
        )
    result["space_rank"] = s_idx
    result["node_rank"] = n_idx
    result["world_rank"] = comm.rank
    return result


def _run_config_digest(
    config: PfasstConfig, p_time: int, p_space: int, p_nodes: int = 1
) -> str:
    """Stable digest binding a checkpoint to its run configuration.

    A checkpoint resumed under a different config, ``p_time``,
    ``p_space`` or ``p_nodes`` cannot reproduce the uninterrupted run
    bitwise, so ``run_pfasst(resume_from=...)`` rejects digest
    mismatches.  ``p_nodes = 1`` keeps the historical digest input so
    pre-existing checkpoints stay resumable.
    """
    key: Tuple[Any, ...] = (config, p_time, p_space)
    if p_nodes != 1:
        key = key + (p_nodes,)
    return hashlib.blake2b(
        repr(key).encode("utf-8"), digest_size=8
    ).hexdigest()


def _collect_evaluator_stats(
    specs: Sequence[LevelSpec],
) -> List[Dict[str, int]]:
    """RHS-call counts and tree-cache counters per level spec.

    Note that ``run_pfasst`` instantiates one :class:`Level` hierarchy per
    rank program around the *shared* spec problems, so the counters
    aggregate over all ranks — which is exactly the total-work view the
    benchmarks need.
    """
    out: List[Dict[str, int]] = []
    for spec in specs:
        entry: Dict[str, int] = {}
        evaluator = getattr(spec.problem, "evaluator", None)
        if evaluator is not None:
            entry["calls"] = int(getattr(evaluator, "calls", 0))
            cache_stats = getattr(evaluator, "cache_stats", None)
            if cache_stats is not None:
                entry.update(cache_stats.as_dict())
        out.append(entry)
    return out


def run_pfasst(
    config: PfasstConfig,
    specs: Sequence[LevelSpec],
    u0: np.ndarray,
    p_time: int,
    cost_model: Optional[CommCostModel] = None,
    measure_compute: bool = False,
    spatial: Optional[Sequence[SpatialTransfer]] = None,
    verify: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    service_order: str = "ascending",
    tracer: Optional[Tracer] = None,
    p_space: int = 1,
    p_nodes: int = 1,
    executor: Optional[ExecutionBackend] = None,
    certify: bool = False,
    checkpoint: Optional[Any] = None,
    checkpoint_interval: int = 1,
    resume_from: Optional[Any] = None,
    backend: Optional[str] = None,
) -> PfasstResult:
    """Execute PFASST with ``p_time`` simulated time ranks.

    ``specs`` orders the level hierarchy fine-to-coarse (one
    :class:`LevelSpec` per level) and ``u0`` is the packed initial
    state at ``config.t0``.  ``cost_model`` prices message traffic for
    the virtual clocks (:class:`~repro.parallel.simmpi.CommCostModel`;
    default free communication), ``spatial`` supplies per-level-pair
    :class:`~repro.pfasst.transfer.SpatialTransfer` operators when the
    levels differ in space, and ``service_order``
    (``"ascending"``/``"descending"``) picks the scheduler's rank
    service order — numerics are service-order independent, which is
    exactly what ``verify=True`` checks.

    ``p_space > 1`` runs the full ``p_time x p_space`` space-time grid
    (paper Fig. 2): the scheduler world holds ``p_time * p_space`` ranks,
    each splitting into its space row and time column, with every RHS
    evaluation sharded over the row (requires problems whose evaluator is
    a :class:`repro.tree.parallel.SpaceParallelTreeEvaluator`; other
    problems silently fall back to redundant serial evaluation).  The
    numerics are identical to ``p_space=1`` up to floating-point
    accumulation order (the run cross-checks that all space columns agree
    bitwise with each other).  Fault injection composes with the grid:
    with ``config.recovery != "fail"`` failure detection runs over the
    whole ``p_time * p_space`` world, warm restarts bitwise-resync every
    space row from its lowest surviving member (rows that lost *all*
    members are rebuilt from a column donor), and all space traffic is
    epoch-tagged so a restart orphans stale ring messages.

    ``p_nodes > 1`` adds PFASST-ER's third dimension: the scheduler
    world grows to ``p_time * p_space * p_nodes`` ranks on a
    :class:`~repro.parallel.topology.SpaceTimeNodeGrid`, and every
    multi-node RHS evaluation round shards the collocation nodes over
    the ``p_nodes`` ranks of each time-space cell (ring allgather over
    the node comm).  Under the default Gauss-Seidel sweeper only the
    controller's restriction/interpolation re-evaluations are multi-node
    rounds (the sweep substitution chain stays sequential) and the run
    is *bitwise identical* to ``p_nodes = 1``; sweep-level node
    parallelism needs levels built with ``LevelSpec(sweeper="diagonal")``,
    whose Jacobi-style updates agree with ``p_nodes = 1`` bitwise as
    well (node sharding never changes what is computed, only where).
    The run cross-checks bitwise agreement across each node group.

    ``checkpoint=`` (a path) writes a durable, versioned
    :class:`~repro.pfasst.checkpoint.RunCheckpoint` every
    ``checkpoint_interval`` iterations — atomic temp-file + fsync +
    rename, CRC-protected; each write replaces the previous checkpoint.
    ``resume_from=`` (a path or a loaded ``RunCheckpoint``) restarts a
    killed run from its last checkpoint: the resumed run adopts the
    level state bitwise, skips the completed blocks and iterations, and
    reaches final u-blocks and residuals identical to an uninterrupted
    run.  Resuming under a different config/``p_time``/``p_space`` is
    rejected (digest mismatch).

    Set ``measure_compute=True`` (and a cost model) for speedup studies;
    leave it off for pure accuracy experiments, where virtual time is
    irrelevant and scheduling overhead should be minimal.
    ``verify=True`` re-runs the whole block pipeline under the reversed
    rank-service order and requires byte-identical results (the
    scheduler's race-detector replay; roughly doubles the run time —
    fault injection is replay-stable, so this composes with a plan).
    ``fault_plan`` injects crashes / link faults
    (:mod:`repro.parallel.faults`); pair it with
    ``config.recovery != "fail"`` for the run to survive them.
    ``tracer`` attaches a :class:`repro.obs.Tracer` to the scheduler;
    combined with ``config.trace=True`` the recording carries one
    virtual-time span per predictor step / sweep / restrict / interp
    (with per-iteration residual instants) per rank — export it with
    :func:`repro.obs.export_chrome_trace` or render it with
    ``repro-trace gantt`` to reproduce the paper's Fig. 6.

    ``executor`` selects the *execution backend*
    (:mod:`repro.parallel.executor`): every level problem is registered
    under a ``DispatchContext`` and RHS evaluations become scheduler
    ``Compute`` ops.  With a
    :class:`~repro.parallel.executor.ProcessExecutor` the independent
    evaluations of one scheduling round run concurrently on real cores;
    the numerics, message stream and (``measure_compute=False``) virtual
    clocks are byte-identical to :class:`~repro.parallel.executor.
    SerialExecutor` and to ``executor=None``.  One caveat:
    ``evaluator_stats`` counts RHS calls in the *driver* process, so
    under a process backend the dispatched calls land in the workers and
    the driver-side counters read near zero — use the scheduler metrics
    (``executor.dispatches{...}``) for call accounting instead.

    ``certify=True`` turns on the scheduler's vector-clock instrumentation
    (:mod:`repro.analysis.commgraph`): every message carries the sender's
    clock, deliveries build a happens-before DAG, and the run's
    :class:`~repro.analysis.commgraph.DeterminismCertificate` (digest +
    channel census + any message races) lands in ``result.certificate``
    and in the ``comm.certificate`` metric.  Combined with ``verify=True``
    the replay's digest must match or the run fails.

    ``backend`` selects the *kernel backend* (:mod:`repro.backends`) for
    every level whose problem carries a backend-aware field evaluator
    (``repro.tree.TreeEvaluator`` and subclasses): ``"numpy"`` (serial
    reference), ``"threaded"`` (thread pool over the write-disjoint
    near-field batches, bitwise identical to numpy) or ``"cupy"``
    (GPU-resident near field, rounding-level equivalent).  ``None``
    leaves each evaluator's own selection (constructor argument or
    ``REPRO_BACKEND``) in place.  The kernel backend composes with
    ``executor=``: backends pickle as their registry name, so evaluators
    dispatched into :class:`~repro.parallel.executor.ProcessExecutor`
    workers re-resolve the same backend on the worker host.  Problems
    without a backend-aware evaluator are silently left untouched.
    """
    check_positive("p_time", p_time)
    check_positive("p_space", p_space)
    check_positive("p_nodes", p_nodes)
    if backend is not None:
        from repro.backends import get_backend

        kernel_backend = get_backend(backend)  # raises early if unusable
        for spec in specs:
            ev = getattr(spec.problem, "evaluator", None)
            if ev is not None and hasattr(ev, "backend"):
                ev.backend = kernel_backend
    if checkpoint_interval < 1:
        raise ValueError(
            f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
        )
    if certify and resume_from is not None:
        raise NotImplementedError(
            "certify=True cannot be combined with resume_from=: a "
            "determinism certificate's channel census covers a whole "
            "run, but a resumed run executes only the tail — certify "
            "the uninterrupted run instead"
        )
    scheduler = Scheduler(
        p_time * p_space * p_nodes, cost_model=cost_model,
        measure_compute=measure_compute,
        verify=verify, fault_plan=fault_plan, service_order=service_order,
        tracer=tracer, executor=executor, certify=certify,
    )
    dispatch: Optional[DispatchContext] = None
    if executor is not None:
        dispatch = DispatchContext(executor)
        for i, spec in enumerate(specs):
            dispatch.register(f"level{i}", spec.problem)
    run_digest = _run_config_digest(config, p_time, p_space, p_nodes)
    checkpointer: Optional[RunCheckpointer] = None
    if checkpoint is not None:
        checkpointer = RunCheckpointer(
            checkpoint, p_time, interval=checkpoint_interval,
            config_digest=run_digest,
            metrics_source=lambda: scheduler.metrics.as_dict(),
        )
    resume: Optional[RunCheckpoint] = None
    if resume_from is not None:
        resume = (resume_from if isinstance(resume_from, RunCheckpoint)
                  else RunCheckpoint.load(resume_from))
        if resume.p_time != p_time:
            raise ValueError(
                f"checkpoint was written by a p_time={resume.p_time} run; "
                f"cannot resume it with p_time={p_time}"
            )
        if resume.config_digest and resume.config_digest != run_digest:
            raise ValueError(
                "checkpoint config digest mismatch: the checkpoint was "
                "written under a different (config, p_time, p_space); "
                "resume with the original run configuration"
            )
    if p_nodes > 1:
        grid3 = SpaceTimeNodeGrid(p_time, p_space, p_nodes)
        results = scheduler.run(
            _node_grid_rank_program,
            args=(config, specs, np.asarray(u0), spatial, grid3, dispatch,
                  checkpointer, resume),
        )
        # space columns and node groups are bitwise-identical (checked
        # inside the program); report (s, n) = (0, 0) as canonical
        results = [
            r for r in results
            if r["space_rank"] == 0 and r["node_rank"] == 0
        ]
    elif p_space > 1:
        grid = SpaceTimeGrid(p_time, p_space)
        results = scheduler.run(
            _grid_rank_program,
            args=(config, specs, np.asarray(u0), spatial, grid, dispatch,
                  checkpointer, resume),
        )
        # all space columns are bitwise-identical (checked inside the
        # program); report the s=0 column as the canonical one
        results = [r for r in results if r["space_rank"] == 0]
    else:
        results = scheduler.run(
            pfasst_rank_program,
            args=(config, specs, np.asarray(u0), spatial, None, dispatch,
                  None, checkpointer, resume),
        )
    by_rank = sorted(results, key=lambda r: r["rank"])
    return PfasstResult(
        u_end=by_rank[-1]["end_value"],
        slice_end_values=[r["end_value"] for r in by_rank],
        residuals=[r["residuals"] for r in by_rank],
        clocks=list(scheduler.clocks),
        iterations_done=by_rank[0]["iterations_done"],
        trace=list(scheduler.trace),
        evaluator_stats=_collect_evaluator_stats(specs),
        total_iterations=by_rank[0]["total_iterations"],
        recoveries=by_rank[0]["recoveries"],
        resilience=scheduler.resilience,
        metrics=scheduler.metrics.as_dict(),
        certificate=scheduler.certificate,
    )
