"""Classic parareal (Lions, Maday & Turinici 2001) as a baseline.

Parareal iterates

    U_{n+1}^{k+1} = G(U_n^{k+1}) + F(U_n^k) - G(U_n^k)

with a cheap coarse propagator ``G`` and an accurate fine propagator ``F``
over ``P_T`` time slices.  Its parallel efficiency is bounded by ``1/K``
(number of iterations), the bound PFASST relaxes to ``Ks/Kp`` — reproducing
this contrast is part of the theory benchmark.

Like the PFASST controller, the algorithm is a rank program for the
simulated MPI scheduler, so the same timing machinery applies.  A serial
reference implementation (`parareal_serial`) is provided for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

import numpy as np

from repro.parallel import tags
from repro.parallel.simmpi import CommCostModel, Scheduler, VirtualComm

__all__ = [
    "Propagator",
    "PararealConfig",
    "PararealResult",
    "parareal_serial",
    "run_parareal",
]

#: propagator signature: (t0, dt, u0) -> u(t0 + dt)
Propagator = Callable[[float, float, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class PararealConfig:
    t0: float
    t_end: float
    n_slices: int
    iterations: int

    def __post_init__(self) -> None:
        if self.n_slices < 1:
            raise ValueError(f"n_slices must be >= 1, got {self.n_slices}")
        if self.iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {self.iterations}")
        if not self.t_end > self.t0:
            raise ValueError("t_end must be > t0")

    @property
    def dt(self) -> float:
        return (self.t_end - self.t0) / self.n_slices


@dataclass
class PararealResult:
    u_end: np.ndarray
    slice_values: List[np.ndarray]  # boundary values U_0..U_N (final iterate)
    increments: List[float]  # max update norm per iteration
    clocks: List[float]

    @property
    def makespan(self) -> float:
        return max(self.clocks) if self.clocks else 0.0


def parareal_serial(
    config: PararealConfig,
    coarse: Propagator,
    fine: Propagator,
    u0: np.ndarray,
) -> PararealResult:
    """Reference serial implementation (identical numerics, no pipeline)."""
    n, dt = config.n_slices, config.dt
    times = [config.t0 + i * dt for i in range(n)]
    u = [np.asarray(u0, dtype=np.float64)]
    for i in range(n):
        u.append(coarse(times[i], dt, u[i]))
    increments: List[float] = []
    g_old = [None] + [u[i + 1].copy() for i in range(n)]
    for _ in range(config.iterations):
        f_old = [fine(times[i], dt, u[i]) for i in range(n)]
        u_new = [u[0]]
        inc = 0.0
        g_new: List[Optional[np.ndarray]] = [None] * (n + 1)
        for i in range(n):
            g = coarse(times[i], dt, u_new[i])
            g_new[i + 1] = g
            value = g + f_old[i] - g_old[i + 1]
            inc = max(inc, float(np.max(np.abs(value - u[i + 1]))))
            u_new.append(value)
        u = u_new
        g_old = g_new
        increments.append(inc)
    return PararealResult(
        u_end=u[-1], slice_values=u, increments=increments, clocks=[]
    )


def _parareal_rank_program(
    comm: VirtualComm,
    config: PararealConfig,
    coarse: Propagator,
    fine: Propagator,
    u0: np.ndarray,
) -> Generator[Any, Any, Dict[str, Any]]:
    """Pipelined parareal on one rank (one slice per rank)."""
    rank, size = comm.rank, comm.size
    if size != config.n_slices:
        raise ValueError(
            f"parareal needs one rank per slice: {size} != {config.n_slices}"
        )
    dt = config.dt
    t_n = config.t0 + rank * dt
    u0 = np.asarray(u0, dtype=np.float64)

    # serial coarse prediction, pipelined
    if rank == 0:
        u_left = u0
    else:
        u_left = yield comm.recv(rank - 1, (tags.PR_INIT, rank - 1))
    g_old = coarse(t_n, dt, u_left)
    if rank < size - 1:
        yield comm.send(rank + 1, (tags.PR_INIT, rank), g_old)

    value = g_old
    increments: List[float] = []
    for k in range(config.iterations):
        f_val = fine(t_n, dt, u_left)
        if rank > 0:
            u_left = yield comm.recv(rank - 1, (tags.PR_ITER, k))
        g_new = coarse(t_n, dt, u_left)
        new_value = g_new + f_val - g_old
        increments.append(float(np.max(np.abs(new_value - value))))
        value = new_value
        g_old = g_new
        if rank < size - 1:
            yield comm.send(rank + 1, (tags.PR_ITER, k), value)
    return {
        "rank": rank,
        "end_value": value,
        "increments": increments,
    }


def run_parareal(
    config: PararealConfig,
    coarse: Propagator,
    fine: Propagator,
    u0: np.ndarray,
    cost_model: Optional[CommCostModel] = None,
    measure_compute: bool = False,
) -> PararealResult:
    """Execute pipelined parareal under the simulated MPI scheduler."""
    scheduler = Scheduler(
        config.n_slices, cost_model=cost_model, measure_compute=measure_compute
    )
    results = scheduler.run(
        _parareal_rank_program, args=(config, coarse, fine, np.asarray(u0))
    )
    by_rank = sorted(results, key=lambda r: r["rank"])
    increments = [
        max(r["increments"][k] for r in by_rank)
        for k in range(config.iterations)
    ]
    return PararealResult(
        u_end=by_rank[-1]["end_value"],
        slice_values=[np.asarray(u0)] + [r["end_value"] for r in by_rank],
        increments=increments,
        clocks=list(scheduler.clocks),
    )
