"""PFASST: parallel full approximation scheme in space and time."""

from repro.pfasst.level import Level, LevelSpec
from repro.pfasst.transfer import (
    TimeSpaceTransfer,
    SpatialTransfer,
    IdentitySpatialTransfer,
)
from repro.pfasst.fas import fas_correction
from repro.pfasst.controller import (
    PfasstConfig,
    PfasstResult,
    run_pfasst,
    pfasst_rank_program,
)
from repro.pfasst.checkpoint import (
    RunCheckpoint,
    RunCheckpointer,
    snapshot_levels,
    adopt_levels,
)
from repro.pfasst.parareal import (
    PararealConfig,
    PararealResult,
    parareal_serial,
    run_parareal,
)
from repro.pfasst.theory import (
    PfasstCostModel,
    speedup_two_level,
    efficiency_two_level,
    speedup_bound,
    parareal_speedup,
    alpha_from_measurements,
    multi_level_speedup,
)
from repro.pfasst.analysis import (
    rk_stability,
    sdc_stability,
    sdc_sweep_matrices,
    parareal_error_matrix,
    parareal_convergence_factor,
)

__all__ = [
    "Level",
    "LevelSpec",
    "TimeSpaceTransfer",
    "SpatialTransfer",
    "IdentitySpatialTransfer",
    "fas_correction",
    "PfasstConfig",
    "PfasstResult",
    "run_pfasst",
    "pfasst_rank_program",
    "RunCheckpoint",
    "RunCheckpointer",
    "snapshot_levels",
    "adopt_levels",
    "PararealConfig",
    "PararealResult",
    "parareal_serial",
    "run_parareal",
    "PfasstCostModel",
    "speedup_two_level",
    "efficiency_two_level",
    "speedup_bound",
    "parareal_speedup",
    "alpha_from_measurements",
    "multi_level_speedup",
    "rk_stability",
    "sdc_stability",
    "sdc_sweep_matrices",
    "parareal_error_matrix",
    "parareal_convergence_factor",
]
