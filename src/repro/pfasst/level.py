"""Level specification and per-rank runtime storage for PFASST."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sdc.quadrature import QuadratureRule, make_rule
from repro.sdc.sweeper import ExplicitSDCSweeper
from repro.vortex.problem import ODEProblem

__all__ = ["LevelSpec", "Level"]


@dataclass(frozen=True)
class LevelSpec:
    """Static description of one PFASST level.

    Parameters
    ----------
    problem :
        The IVP with this level's RHS accuracy.  The paper's particle
        coarsening supplies the *same* problem with a tree evaluator using
        a larger ``theta`` on coarser levels.
    num_nodes :
        Collocation nodes at this level (paper: 3 fine / 2 coarse).
    sweeps :
        SDC sweeps performed at this level per PFASST iteration
        (``n_ell``; paper: 1 fine, Y coarse).
    node_type :
        Collocation family; coarse nodes should be (near-)nested in the
        fine ones.
    sweeper :
        ``"gauss-seidel"`` (the sequential node-to-node substitution,
        default) or ``"diagonal"`` (the PFASST-ER Jacobi-style
        :class:`~repro.sdc.diagonal.DiagonalSDCSweeper` with mutually
        independent node updates — required for sweep-level ``p_nodes``
        parallelism).
    diagonal_coefficients :
        Coefficient choice for the diagonal sweeper (``"ie"``,
        ``"min"``, ``"picard"``; see
        :func:`repro.sdc.quadrature.diagonal_coefficients`).  Ignored
        under ``"gauss-seidel"``.
    """

    problem: ODEProblem
    num_nodes: int
    sweeps: int = 1
    node_type: str = "lobatto"
    sweeper: str = "gauss-seidel"
    diagonal_coefficients: str = "min"

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError(f"need >= 2 nodes per level, got {self.num_nodes}")
        if self.sweeps < 1:
            raise ValueError(f"need >= 1 sweep per level, got {self.sweeps}")
        if self.sweeper not in ("gauss-seidel", "diagonal"):
            raise ValueError(
                f"unknown sweeper {self.sweeper!r}: "
                "expected 'gauss-seidel' or 'diagonal'"
            )


class Level:
    """Mutable per-rank storage of one level's node data."""

    def __init__(self, spec: LevelSpec) -> None:
        self.spec = spec
        self.rule: QuadratureRule = make_rule(spec.num_nodes, spec.node_type)
        if spec.sweeper == "diagonal":
            from repro.sdc.diagonal import DiagonalSDCSweeper

            self.sweeper: ExplicitSDCSweeper = DiagonalSDCSweeper(
                spec.problem, self.rule,
                coefficients=spec.diagonal_coefficients,
            )
        else:
            self.sweeper = ExplicitSDCSweeper(spec.problem, self.rule)
        self.U: Optional[np.ndarray] = None  # (M+1, *state)
        self.F: Optional[np.ndarray] = None
        self.tau: Optional[np.ndarray] = None  # node-to-node FAS
        self.u0: Optional[np.ndarray] = None  # current initial value
        #: True when u0 changed since the last sweep consumed it (the
        #: sweep then re-evaluates F at node 0, otherwise it is reused)
        self.u0_dirty: bool = True
        #: snapshots taken when this level was filled by restriction,
        #: used to form the coarse corrections U - U_snap / F - F_snap
        #: on the way up the V-cycle
        self.U_at_restriction: Optional[np.ndarray] = None
        self.F_at_restriction: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Discard all runtime state, as if the owning rank's node died.

        Used by the fault-tolerant PFASST controller: a crashed rank's
        replacement starts from wiped levels and rebuilds them from a
        neighbour's coarse solution (warm restart) or from the block's
        predictor (cold restart).
        """
        self.U = None
        self.F = None
        self.tau = None
        self.u0 = None
        self.u0_dirty = True
        self.U_at_restriction = None
        self.F_at_restriction = None

    @property
    def problem(self) -> ODEProblem:
        return self.spec.problem

    @property
    def evaluator(self):
        """The problem's field evaluator, if it has one (else ``None``)."""
        return getattr(self.spec.problem, "evaluator", None)

    @property
    def timings(self):
        """This level's sweep-phase :class:`~repro.utils.timing.TimingRegistry`."""
        return self.sweeper.timings

    @property
    def end_value(self) -> np.ndarray:
        """Solution at the right edge of the slice."""
        if self.U is None or self.F is None or self.u0 is None:
            raise RuntimeError("level has not been initialised")
        return self.sweeper.end_value(self._dt, self.U, self.F, self.u0)

    # dt is threaded in by the controller before use
    _dt: float = 0.0
