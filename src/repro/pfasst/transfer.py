"""Transfer operators between PFASST levels.

Time direction: node values live on collocation nodes; restriction and
interpolation are Lagrange evaluation matrices between the two node sets
(exact injection when the coarse nodes are a subset of the fine ones, the
paper's recommended choice).

Space direction: the paper's particle coarsening keeps the *same particle
set* on every level and changes only the multipole acceptance parameter of
the RHS evaluator, so the spatial transfer is the identity.  The
:class:`SpatialTransfer` hook still exists so grid-based problems (or
future particle-subset coarsening, Sec. V outlook) can plug in genuine
restriction/prolongation.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.analysis.sanitize import boundary
from repro.sdc.quadrature import QuadratureRule, lagrange_interpolation_matrix

__all__ = ["SpatialTransfer", "IdentitySpatialTransfer", "TimeSpaceTransfer"]


class SpatialTransfer(Protocol):
    """Restriction/prolongation acting on a single state vector."""

    def restrict(self, u_fine: np.ndarray) -> np.ndarray: ...

    def interpolate(self, u_coarse: np.ndarray) -> np.ndarray: ...


class IdentitySpatialTransfer:
    """No-op spatial transfer (the paper's particle-coarsening setting)."""

    def restrict(self, u_fine: np.ndarray) -> np.ndarray:
        return u_fine

    def interpolate(self, u_coarse: np.ndarray) -> np.ndarray:
        return u_coarse


class TimeSpaceTransfer:
    """Couples a fine and a coarse quadrature rule (one level interface).

    Attributes
    ----------
    R_time : (Mc+1, Mf+1)
        Evaluates the fine nodal interpolant at the coarse nodes
        (restriction; exact injection for nested nodes).
    P_time : (Mf+1, Mc+1)
        Evaluates the coarse nodal interpolant at the fine nodes
        (interpolation).
    """

    def __init__(
        self,
        fine_rule: QuadratureRule,
        coarse_rule: QuadratureRule,
        spatial: SpatialTransfer | None = None,
    ) -> None:
        fine_set = fine_rule.node_set
        coarse_set = coarse_rule.node_set
        if fine_set.includes_left != coarse_set.includes_left:
            # the controller's FAS/initial-value handling treats node 0
            # uniformly per hierarchy: a left-including family paired
            # with a non-left one would silently mix "node 0 is u0"
            # with "node 0 is an unknown" across the level interface
            raise ValueError(
                "unsupported level pairing: fine node family "
                f"{fine_set.node_type!r} "
                f"{'includes' if fine_set.includes_left else 'excludes'} "
                "the left endpoint but coarse family "
                f"{coarse_set.node_type!r} "
                f"{'includes' if coarse_set.includes_left else 'excludes'} "
                "it; use families that agree on the left endpoint on "
                "every level"
            )
        self.fine_rule = fine_rule
        self.coarse_rule = coarse_rule
        self.spatial: SpatialTransfer = spatial or IdentitySpatialTransfer()
        self.R_time = lagrange_interpolation_matrix(
            fine_rule.nodes, coarse_rule.nodes
        )
        self.P_time = lagrange_interpolation_matrix(
            coarse_rule.nodes, fine_rule.nodes
        )

    # -- node arrays: shape (M+1, *state) -----------------------------
    def _apply_time(self, mat: np.ndarray, values: np.ndarray) -> np.ndarray:
        return np.tensordot(mat, values, axes=(1, 0))

    @boundary("restrict_nodes", arrays=["values_fine"])
    def restrict_nodes(self, values_fine: np.ndarray) -> np.ndarray:
        """Restrict node values fine -> coarse (time then space)."""
        coarse_time = self._apply_time(self.R_time, values_fine)
        return np.stack(
            [self.spatial.restrict(v) for v in coarse_time], axis=0
        )

    @boundary("interpolate_nodes", arrays=["values_coarse"])
    def interpolate_nodes(self, values_coarse: np.ndarray) -> np.ndarray:
        """Interpolate node values coarse -> fine (space then time)."""
        fine_space = np.stack(
            [self.spatial.interpolate(v) for v in values_coarse], axis=0
        )
        return self._apply_time(self.P_time, fine_space)

    # -- single states (e.g. initial values at node 0) ----------------
    def restrict_state(self, u_fine: np.ndarray) -> np.ndarray:
        return self.spatial.restrict(u_fine)

    def interpolate_state(self, u_coarse: np.ndarray) -> np.ndarray:
        return self.spatial.interpolate(u_coarse)
