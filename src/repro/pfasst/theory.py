"""Theoretical cost, speedup and efficiency models (paper Eqs. 21-25).

Notation (two-level case, Eq. 24):

* ``Ks``  — serial SDC sweeps per step to reach the target accuracy
* ``Kp``  — PFASST iterations to reach the same accuracy
* ``nL``  — coarse sweeps per iteration (and per predictor stage)
* ``alpha = Upsilon_coarse / Upsilon_fine`` — cost ratio of one coarse
  sweep to one fine sweep; the paper reduces it via the multipole
  acceptance parameter: ``alpha = (M_c / M_f) / ratio_theta`` where
  ``ratio_theta`` is the measured RHS cost ratio between theta values
  (e.g. Eq. 26: ``alpha_small = 2 / (2.65 * 3)``).
* ``beta`` — per-iteration overhead relative to a fine sweep.

``S(P_T; alpha) <= (Ks/Kp) P_T`` (Eq. 25) relaxes parareal's ``P_T / K``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "PfasstCostModel",
    "speedup_two_level",
    "efficiency_two_level",
    "speedup_bound",
    "parareal_speedup",
    "alpha_from_measurements",
    "multi_level_speedup",
]


def alpha_from_measurements(
    m_coarse: int, m_fine: int, theta_cost_ratio: float
) -> float:
    """Coarse/fine sweep cost ratio from node counts and RHS cost ratio.

    One sweep at a level costs ``M`` substeps, each dominated by an RHS
    evaluation, so ``alpha = (M_c * c_coarse) / (M_f * c_fine)``.  The
    paper's Eq. 26 instances: ``alpha_small = 2/(2.65*3)`` and
    ``alpha_large = 2/(3.23*3)``.
    """
    if m_coarse < 1 or m_fine < 1:
        raise ValueError("node substep counts must be >= 1")
    if theta_cost_ratio <= 0:
        raise ValueError(f"cost ratio must be > 0, got {theta_cost_ratio}")
    return (m_coarse / m_fine) / theta_cost_ratio


@dataclass(frozen=True)
class PfasstCostModel:
    """Cost bookkeeping of a PFASST run (Eqs. 21-23)."""

    ks: int  # serial sweeps
    kp: int  # parallel iterations
    n_sweeps: Sequence[int]  # sweeps per level per iteration, fine..coarse
    upsilon: Sequence[float]  # cost of one sweep per level, fine..coarse
    gamma: Sequence[float]  # FAS overhead per level per iteration

    def __post_init__(self) -> None:
        if not (len(self.n_sweeps) == len(self.upsilon) == len(self.gamma)):
            raise ValueError("per-level sequences must have equal lengths")
        if self.ks < 1 or self.kp < 1:
            raise ValueError("iteration counts must be >= 1")

    def serial_cost(self, p_t: int) -> float:
        """Eq. 21: ``Cs = P_T Ks Upsilon_0``."""
        return p_t * self.ks * self.upsilon[0]

    def parallel_cost(self, p_t: int) -> float:
        """Eq. 22: ``Cp = P_T nL UpsilonL + Kp sum(n Upsilon + n Gamma)``."""
        predictor = p_t * self.n_sweeps[-1] * self.upsilon[-1]
        per_iter = sum(
            n * (u + g)
            for n, u, g in zip(self.n_sweeps, self.upsilon, self.gamma)
        )
        return predictor + self.kp * per_iter

    def speedup(self, p_t: int) -> float:
        """Eq. 23."""
        return self.serial_cost(p_t) / self.parallel_cost(p_t)

    def efficiency(self, p_t: int) -> float:
        return self.speedup(p_t) / p_t


def speedup_two_level(
    p_t: int | np.ndarray,
    alpha: float,
    ks: int,
    kp: int,
    n_coarse: int,
    beta: float = 0.0,
) -> np.ndarray:
    """Eq. 24: ``S = P_T Ks / (P_T nL alpha + Kp (1 + nL alpha + beta))``."""
    p = np.asarray(p_t, dtype=np.float64)
    return p * ks / (p * n_coarse * alpha + kp * (1.0 + n_coarse * alpha + beta))


def efficiency_two_level(
    p_t: int | np.ndarray,
    alpha: float,
    ks: int,
    kp: int,
    n_coarse: int,
    beta: float = 0.0,
) -> np.ndarray:
    return speedup_two_level(p_t, alpha, ks, kp, n_coarse, beta) / np.asarray(
        p_t, dtype=np.float64
    )


def speedup_bound(p_t: int | np.ndarray, ks: int, kp: int) -> np.ndarray:
    """Eq. 25: ``S <= (Ks/Kp) P_T``, independent of alpha."""
    return np.asarray(p_t, dtype=np.float64) * ks / kp


def parareal_speedup(
    p_t: int | np.ndarray, alpha: float, k: int
) -> np.ndarray:
    """Classic parareal speedup ``P_T / (P_T alpha + K (1 + alpha))``.

    Its efficiency is bounded by ``1/K`` — the strict limit the paper
    contrasts against PFASST's ``Ks/Kp``.
    """
    p = np.asarray(p_t, dtype=np.float64)
    return p / (p * alpha + k * (1.0 + alpha))


def multi_level_speedup(
    p_t: int | np.ndarray,
    ks: int,
    kp: int,
    n_sweeps: Sequence[int],
    upsilon: Sequence[float],
    gamma: Sequence[float] | None = None,
) -> np.ndarray:
    """General L-level speedup via Eq. 23, vectorised over ``p_t``."""
    gamma = gamma if gamma is not None else [0.0] * len(n_sweeps)
    p = np.asarray(p_t, dtype=np.float64)
    predictor = p * n_sweeps[-1] * upsilon[-1]
    per_iter = sum(
        n * (u + g) for n, u, g in zip(n_sweeps, upsilon, gamma)
    )
    return p * ks * upsilon[0] / (predictor + kp * per_iter)
