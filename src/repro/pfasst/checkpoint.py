"""Durable checkpoint/restart for PFASST runs (ROADMAP item 5).

A :class:`RunCheckpoint` captures everything a ``run_pfasst`` invocation
needs to resume mid-block and reproduce the uninterrupted run *bitwise*:
the per-time-rank level state (U, F, tau, initial conditions and the
restriction snapshots), the block-initial value ``u_block``, residual
histories, the attempt counter of the active block, per-block iteration
bookkeeping, an optional RNG state slot and a metrics snapshot.  The
container on disk is ``REPROCKPT1 + CRC32 + npz``, written via the
atomic temp-file + fsync + ``os.replace`` path of :mod:`repro.io` — a
driver-process kill can never leave a torn checkpoint, and bit rot is
reported as :class:`~repro.io.CheckpointCorruptionError` instead of
silently wrong state.

The :class:`RunCheckpointer` is a plain in-process object shared by all
rank programs of one scheduler world.  Ranks *contribute* their
iteration-end state with ordinary function calls — no messages, no extra
ops — so attaching a checkpointer leaves the op stream, virtual clocks
and numerics of the run byte-identical to an unobserved run.  A
checkpoint for ``(block, k)`` is written once the slowest rank passes
iteration ``k`` (ranks pipeline freely between status collectives).

The solver itself is deterministic and draws from no RNG; the
``rng_state`` slot exists for drivers (e.g. the chaos harness, sampling
campaigns) that want their generator state to survive a restart.
"""

from __future__ import annotations

import io as _io
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.io import (
    CheckpointCorruptionError,
    read_crc_container,
    write_crc_container,
)

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "RunCheckpoint",
    "RunCheckpointer",
    "snapshot_levels",
    "adopt_levels",
]

CHECKPOINT_MAGIC = b"REPROCKPT1"
CHECKPOINT_VERSION = 1

PathLike = Union[str, pathlib.Path]

#: per-level array fields captured by :func:`snapshot_levels`
_LEVEL_FIELDS = ("U", "F", "tau", "u0", "U_at_restriction",
                 "F_at_restriction")


def snapshot_levels(levels: List[Any]) -> List[Dict[str, Any]]:
    """Deep-copy the mutable state of a level hierarchy.

    The returned blob is what the grid-recovery row resync broadcasts
    and what checkpoints persist; adopting it via :func:`adopt_levels`
    reproduces the hierarchy bitwise.
    """
    blob = []
    for lv in levels:
        entry: Dict[str, Any] = {"u0_dirty": bool(lv.u0_dirty)}
        for name in _LEVEL_FIELDS:
            value = getattr(lv, name)
            entry[name] = None if value is None else np.array(value,
                                                              copy=True)
        blob.append(entry)
    return blob


def adopt_levels(levels: List[Any], blob: List[Dict[str, Any]]) -> None:
    """Overwrite a level hierarchy with a :func:`snapshot_levels` blob."""
    if len(levels) != len(blob):
        raise ValueError(
            f"level-state blob has {len(blob)} level(s), hierarchy has "
            f"{len(levels)}"
        )
    for lv, entry in zip(levels, blob):
        lv.u0_dirty = bool(entry["u0_dirty"])
        for name in _LEVEL_FIELDS:
            value = entry[name]
            setattr(lv, name,
                    None if value is None else np.array(value, copy=True))


@dataclass
class RunCheckpoint:
    """One durable snapshot of a PFASST run at ``(block, k)``.

    ``levels[rank]`` / ``residuals[rank]`` are per-time-rank;
    ``iterations_done``/``total_iterations``/``recoveries`` cover the
    blocks completed *before* ``block``; ``iters_attempted`` counts
    iteration attempts inside the active block (restarts included).
    """

    config_digest: str
    p_time: int
    block: int
    k: int
    attempt: int
    u_block: np.ndarray
    levels: Dict[int, List[Dict[str, Any]]]
    residuals: Dict[int, List[float]]
    iterations_done: List[int]
    total_iterations: List[int]
    recoveries: List[Dict[str, Any]]
    iters_attempted: int
    rng_state: Optional[bytes] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    # -- persistence ----------------------------------------------------
    def save(self, path: PathLike) -> pathlib.Path:
        arrays: Dict[str, Any] = {"u_block": self.u_block}
        n_levels = 0
        for rank, blob in self.levels.items():
            n_levels = len(blob)
            arrays[f"r{rank}_residuals"] = np.asarray(
                self.residuals[rank], dtype=np.float64
            )
            for lev, entry in enumerate(blob):
                for name in _LEVEL_FIELDS:
                    value = entry[name]
                    if value is not None:
                        arrays[f"r{rank}_l{lev}_{name}"] = value
        meta = {
            "version": self.version,
            "config_digest": self.config_digest,
            "p_time": self.p_time,
            "block": self.block,
            "k": self.k,
            "attempt": self.attempt,
            "n_levels": n_levels,
            "u0_dirty": {
                str(rank): [bool(e["u0_dirty"]) for e in blob]
                for rank, blob in self.levels.items()
            },
            "iterations_done": list(self.iterations_done),
            "total_iterations": list(self.total_iterations),
            "recoveries": self.recoveries,
            "iters_attempted": self.iters_attempted,
            "rng_state": (None if self.rng_state is None
                          else self.rng_state.hex()),
            "metrics": self.metrics,
        }
        arrays["meta"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        buf = _io.BytesIO()
        np.savez_compressed(buf, **arrays)
        return write_crc_container(path, CHECKPOINT_MAGIC, buf.getvalue())

    @classmethod
    def load(cls, path: PathLike) -> "RunCheckpoint":
        payload = read_crc_container(path, CHECKPOINT_MAGIC)
        with np.load(_io.BytesIO(payload), allow_pickle=False) as data:
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            if meta["version"] > CHECKPOINT_VERSION:
                raise ValueError(
                    f"run checkpoint {path} has version {meta['version']}; "
                    f"this build reads up to {CHECKPOINT_VERSION}"
                )
            levels: Dict[int, List[Dict[str, Any]]] = {}
            residuals: Dict[int, List[float]] = {}
            for rank_s, dirty_flags in meta["u0_dirty"].items():
                rank = int(rank_s)
                residuals[rank] = [
                    float(x) for x in data[f"r{rank}_residuals"]
                ]
                blob = []
                for lev, dirty in enumerate(dirty_flags):
                    entry: Dict[str, Any] = {"u0_dirty": bool(dirty)}
                    for name in _LEVEL_FIELDS:
                        key = f"r{rank}_l{lev}_{name}"
                        entry[name] = (data[key].copy()
                                       if key in data.files else None)
                    blob.append(entry)
                levels[rank] = blob
            return cls(
                config_digest=meta["config_digest"],
                p_time=int(meta["p_time"]),
                block=int(meta["block"]),
                k=int(meta["k"]),
                attempt=int(meta["attempt"]),
                u_block=data["u_block"].copy(),
                levels=levels,
                residuals=residuals,
                iterations_done=[int(x) for x in meta["iterations_done"]],
                total_iterations=[int(x) for x in meta["total_iterations"]],
                recoveries=meta["recoveries"],
                iters_attempted=int(meta["iters_attempted"]),
                rng_state=(None if meta["rng_state"] is None
                           else bytes.fromhex(meta["rng_state"])),
                metrics=meta["metrics"],
                version=int(meta["version"]),
            )


class RunCheckpointer:
    """Collects per-rank iteration-end state and writes checkpoints.

    One instance is shared (in-process) by every rank program of a run.
    ``contribute`` is called by each time rank after finishing iteration
    ``k`` of ``block``; once all ``p_time`` ranks have contributed for
    the same ``(block, k, attempt)`` and ``k`` falls on the configured
    interval, the bundle is serialised and atomically written to
    ``path`` (each write replaces the previous checkpoint).  On the
    space-time grid only the ``s = 0`` column contributes — row state is
    replicated bitwise, so one column describes the whole grid.
    """

    def __init__(
        self,
        path: PathLike,
        p_time: int,
        interval: int = 1,
        config_digest: str = "",
        metrics_source: Optional[Callable[[], Dict[str, Any]]] = None,
        rng_state: Optional[bytes] = None,
    ) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.path = pathlib.Path(path)
        self.p_time = p_time
        self.interval = interval
        self.config_digest = config_digest
        self.metrics_source = metrics_source
        self.rng_state = rng_state
        self.writes = 0
        self.last_written: Optional[tuple] = None
        self._pending: Dict[tuple, Dict[int, Dict[str, Any]]] = {}

    def wants(self, k: int) -> bool:
        """True when iteration ``k`` falls on the checkpoint interval.

        Callers use this to skip building the (copy-heavy) state
        snapshot for iterations that would be discarded anyway.
        """
        return (k + 1) % self.interval == 0

    def contribute(
        self, rank: int, block: int, k: int, attempt: int,
        state: Dict[str, Any],
    ) -> None:
        """Record rank state for iteration ``k``; write when complete."""
        if not self.wants(k):
            return
        key = (block, k, attempt)
        bucket = self._pending.setdefault(key, {})
        bucket[rank] = state
        if len(bucket) == self.p_time:
            self._write(key, bucket)
            # contributions at or before the written point are obsolete
            self._pending = {
                pk: pv for pk, pv in self._pending.items() if pk > key
            }

    def _write(self, key: tuple, bucket: Dict[int, Dict[str, Any]]) -> None:
        block, k, attempt = key
        rank0 = bucket[0]
        ckpt = RunCheckpoint(
            config_digest=self.config_digest,
            p_time=self.p_time,
            block=block,
            k=k,
            attempt=attempt,
            u_block=rank0["u_block"],
            levels={r: s["levels"] for r, s in bucket.items()},
            residuals={r: s["residuals"] for r, s in bucket.items()},
            iterations_done=rank0["iterations_done"],
            total_iterations=rank0["total_iterations"],
            recoveries=rank0["recoveries"],
            iters_attempted=rank0["iters_attempted"],
            rng_state=self.rng_state,
            metrics=(self.metrics_source() if self.metrics_source else {}),
        )
        ckpt.save(self.path)
        self.writes += 1
        self.last_written = key
