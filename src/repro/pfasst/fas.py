"""Full Approximation Scheme correction between SDC levels (paper Eq. 16).

The coarse collocation problem is augmented so that its solution equals the
*restriction of the fine solution* instead of the coarse discretisation's
own (less accurate) solution:

    tau_C = restrict( dt Q_F F_F + Tau_F ) - dt Q_C F_C(restrict U_F)

in cumulative (Q) form, where ``Tau_F`` is the fine level's own cumulative
FAS term (zero on the finest level).  Sweeps consume the correction in
node-to-node (S) form, so this module converts cumulative differences back
to increments.

Fixed-point property (verified in the tests): if ``U_F`` solves the fine
collocation problem then the restricted state solves the tau-corrected
coarse problem exactly, so coarse sweeps leave it invariant and PFASST's
fixed point is the fine collocation solution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.pfasst.transfer import TimeSpaceTransfer

__all__ = ["fas_correction"]


def fas_correction(
    dt: float,
    transfer: TimeSpaceTransfer,
    F_fine: np.ndarray,
    F_coarse: np.ndarray,
    tau_fine: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Node-to-node FAS correction for the coarse level.

    Parameters
    ----------
    dt :
        Time step length (the rules are normalised to [0, 1]).
    transfer :
        The fine/coarse level pair's transfer operators.
    F_fine : (Mf+1, *state)
        RHS evaluations at the fine nodes.
    F_coarse : (Mc+1, *state)
        RHS evaluations of the *restricted* solution at the coarse nodes.
    tau_fine : (Mf+1, *state), optional
        The fine level's own node-to-node FAS term (multi-level runs).

    Returns
    -------
    (Mc+1, *state) array in node-to-node form.  Entry 0 corrects the
    ``[0, tau_0]`` sub-interval: it is zero for left-including families
    (``tau_0 = 0``) and genuinely nonzero for ``radau-right`` /
    ``legendre`` levels, where the node-0 sweep update consumes it.
    """
    fine_cum = dt * transfer.fine_rule.integrate_from_start(F_fine)
    if tau_fine is not None:
        fine_cum = fine_cum + np.cumsum(tau_fine, axis=0)
    restricted_cum = transfer.restrict_nodes(fine_cum)
    coarse_cum = dt * transfer.coarse_rule.integrate_from_start(F_coarse)
    tau_cum = restricted_cum - coarse_cum
    tau = np.diff(tau_cum, axis=0, prepend=tau_cum[:1] * 0.0)
    tau[0] = tau_cum[0]
    return tau
