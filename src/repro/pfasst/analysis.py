"""Linear stability and convergence analysis for the time integrators.

Complements the runtime experiments with the classical linear theory on
the Dahlquist test equation ``u' = z u``:

* stability functions ``R(z)`` of the explicit RK baselines (via the
  Butcher formula) and of explicit SDC sweeps (via the exact matrix form
  of the node-to-node sweep);
* the parareal error-propagation matrix and its convergence factor
  (Gander & Vandewalle 2007): parareal's iteration error satisfies
  ``e^{k+1} = E e^k`` with a strictly lower-triangular Toeplitz ``E``
  built from the fine and coarse stability values.

These quantities back the paper's framing: SDC(k) reproduces ``exp(z)``
to order k, and the parareal/PFASST iteration converges fast when the
coarse propagator tracks the fine one.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.integrators.runge_kutta import ButcherTableau
from repro.sdc.quadrature import make_rule

__all__ = [
    "rk_stability",
    "sdc_stability",
    "sdc_sweep_matrices",
    "parareal_error_matrix",
    "parareal_convergence_factor",
]


def rk_stability(tableau: ButcherTableau, z: complex | np.ndarray) -> np.ndarray:
    """Stability function ``R(z) = 1 + z b^T (I - z A)^{-1} 1``."""
    z = np.asarray(z, dtype=complex)
    a = np.array(tableau.a, dtype=float)
    b = np.array(tableau.b, dtype=float)
    s = b.size
    out = np.empty(z.shape, dtype=complex)
    ones = np.ones(s)
    identity = np.eye(s)
    for idx in np.ndindex(z.shape):
        m = identity - z[idx] * a
        out[idx] = 1.0 + z[idx] * (b @ np.linalg.solve(m, ones))
    return out if out.shape else out[()]


def sdc_sweep_matrices(
    num_nodes: int, z: complex, node_type: str = "lobatto"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Matrices ``(M_new, M_old, e0)`` of one explicit SDC sweep.

    For ``u' = z u`` the node-to-node sweep (Eq. 13 with dt = 1) is
    linear: ``M_new U^{k+1} = M_old U^k + e0 u_0``; this returns the
    exact matrices so stability functions can be assembled.
    """
    rule = make_rule(num_nodes, node_type)
    m1 = rule.num_nodes
    delta = rule.delta
    s_mat = rule.S
    m_new = np.eye(m1, dtype=complex)
    m_old = np.zeros((m1, m1), dtype=complex)
    e0 = np.zeros(m1, dtype=complex)
    e0[0] = 1.0  # U^{k+1}_0 = u0
    for m in range(m1 - 1):
        # U_{m+1} = U_m + z d_m (U^{k+1}_m - U^k_m) + z (S U^k)_{m+1}
        m_new[m + 1, m + 1] = 1.0
        m_new[m + 1, m] = -(1.0 + z * delta[m])
        m_old[m + 1, m] = -z * delta[m]
        m_old[m + 1, :] += z * s_mat[m + 1, :]
    return m_new, m_old, e0


def sdc_stability(
    num_nodes: int,
    sweeps: int,
    z: complex | np.ndarray,
    node_type: str = "lobatto",
) -> np.ndarray:
    """Stability function of ``sweeps`` explicit SDC sweeps on a spread
    provisional solution (the ``SDC(K)`` scheme of the paper)."""
    z = np.asarray(z, dtype=complex)
    out = np.empty(z.shape, dtype=complex)
    for idx in np.ndindex(z.shape):
        m_new, m_old, e0 = sdc_sweep_matrices(num_nodes, z[idx], node_type)
        u = np.ones(m_new.shape[0], dtype=complex)  # spread init, u0 = 1
        for _ in range(sweeps):
            u = np.linalg.solve(m_new, m_old @ u + e0)
        out[idx] = u[-1]
    return out if out.shape else out[()]


def parareal_error_matrix(
    r_fine: complex, r_coarse: complex, n_slices: int
) -> np.ndarray:
    """Error-propagation matrix ``E`` of parareal on ``u' = z u``.

    With slice boundary errors ``e_n``, one parareal iteration gives
    ``e^{k+1}_{n+1} = R_G e^{k+1}_n + (R_F - R_G) e^k_n`` so that
    ``e^{k+1} = E e^k`` with
    ``E = (I - R_G L)^{-1} (R_F - R_G) L`` and ``L`` the lower shift.
    """
    if n_slices < 1:
        raise ValueError(f"n_slices must be >= 1, got {n_slices}")
    shift = np.eye(n_slices, k=-1, dtype=complex)
    lhs = np.eye(n_slices, dtype=complex) - r_coarse * shift
    rhs = (r_fine - r_coarse) * shift
    return np.linalg.solve(lhs, rhs)


def parareal_convergence_factor(
    r_fine: complex, r_coarse: complex, n_slices: int,
    iterations: int = 1,
) -> float:
    """2-norm contraction of ``iterations`` parareal iterations.

    Values below 1 mean the iteration converges; equal coarse and fine
    propagators give exactly 0 (one-shot convergence).
    """
    e = parareal_error_matrix(r_fine, r_coarse, n_slices)
    power = np.linalg.matrix_power(e, iterations)
    return float(np.linalg.norm(power, 2))
