"""Time-serial baseline integrators (explicit Runge-Kutta family)."""

from repro.integrators.runge_kutta import (
    ButcherTableau,
    RungeKutta,
    forward_euler,
    rk2_midpoint,
    rk2_heun,
    rk3_ssp,
    rk4_classic,
    get_integrator,
    available_integrators,
    integrate,
)

__all__ = [
    "ButcherTableau",
    "RungeKutta",
    "forward_euler",
    "rk2_midpoint",
    "rk2_heun",
    "rk3_ssp",
    "rk4_classic",
    "get_integrator",
    "available_integrators",
    "integrate",
]
