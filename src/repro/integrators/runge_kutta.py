"""Classical time-serial integrators used as baselines.

The paper's Fig. 1 evolves the vortex sheet with a second-order Runge-Kutta
scheme, and Sec. II notes that third/fourth-order RK is the classical choice
for vortex methods.  These integrators operate on the same
:class:`~repro.vortex.problem.ODEProblem` interface as SDC/PFASST so every
driver is interchangeable in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive
from repro.vortex.problem import ODEProblem

__all__ = [
    "ButcherTableau",
    "RungeKutta",
    "forward_euler",
    "rk2_midpoint",
    "rk2_heun",
    "rk3_ssp",
    "rk4_classic",
    "get_integrator",
    "available_integrators",
    "integrate",
]


@dataclass(frozen=True)
class ButcherTableau:
    """Explicit Runge-Kutta tableau (strictly lower-triangular ``a``)."""

    name: str
    order: int
    a: Tuple[Tuple[float, ...], ...]
    b: Tuple[float, ...]
    c: Tuple[float, ...]

    def __post_init__(self) -> None:
        s = len(self.b)
        if len(self.c) != s or len(self.a) != s:
            raise ValueError(f"tableau {self.name!r} has inconsistent stage counts")
        for i, row in enumerate(self.a):
            if len(row) != s:
                raise ValueError(f"tableau {self.name!r} row {i} has wrong length")
            if any(row[j] != 0.0 for j in range(i, s)):
                raise ValueError(f"tableau {self.name!r} is not explicit")
        if abs(sum(self.b) - 1.0) > 1e-13:
            raise ValueError(f"tableau {self.name!r} weights do not sum to 1")

    @property
    def stages(self) -> int:
        return len(self.b)


class RungeKutta:
    """Explicit RK stepper over an :class:`ODEProblem`."""

    def __init__(self, tableau: ButcherTableau) -> None:
        self.tableau = tableau

    @property
    def name(self) -> str:
        return self.tableau.name

    @property
    def order(self) -> int:
        return self.tableau.order

    def step(self, problem: ODEProblem, t: float, dt: float, u: np.ndarray) -> np.ndarray:
        """Advance one step ``t -> t + dt``."""
        tab = self.tableau
        k: List[np.ndarray] = []
        for i in range(tab.stages):
            ui = u
            for j in range(i):
                aij = tab.a[i][j]
                if aij != 0.0:
                    ui = ui + dt * aij * k[j]
            k.append(problem.rhs(t + tab.c[i] * dt, ui))
        out = u.copy()
        for bi, ki in zip(tab.b, k):
            if bi != 0.0:
                out = out + dt * bi * ki
        return out

    def run(
        self,
        problem: ODEProblem,
        u0: np.ndarray,
        t0: float,
        t_end: float,
        dt: float,
        callback: Optional[Callable[[float, np.ndarray], None]] = None,
    ) -> np.ndarray:
        """Integrate from ``t0`` to ``t_end`` with uniform steps.

        ``t_end - t0`` must be an integer multiple of ``dt`` (to round-off).
        """
        return integrate(self.step, problem, u0, t0, t_end, dt, callback)


def integrate(
    step: Callable[[ODEProblem, float, float, np.ndarray], np.ndarray],
    problem: ODEProblem,
    u0: np.ndarray,
    t0: float,
    t_end: float,
    dt: float,
    callback: Optional[Callable[[float, np.ndarray], None]] = None,
) -> np.ndarray:
    """Drive any single-step method over a uniform time grid."""
    check_positive("dt", dt)
    span = t_end - t0
    if span < 0:
        raise ValueError(f"t_end {t_end} must be >= t0 {t0}")
    n_steps = int(round(span / dt))
    if abs(n_steps * dt - span) > 1e-9 * max(1.0, abs(span)):
        raise ValueError(
            f"interval length {span} is not an integer multiple of dt={dt}"
        )
    u = u0.copy()
    t = t0
    if callback is not None:
        callback(t, u)
    for step_index in range(n_steps):
        u = step(problem, t, dt, u)
        t = t0 + (step_index + 1) * dt
        if callback is not None:
            callback(t, u)
    return u


forward_euler = ButcherTableau(
    name="euler", order=1, a=((0.0,),), b=(1.0,), c=(0.0,)
)

rk2_midpoint = ButcherTableau(
    name="rk2",
    order=2,
    a=((0.0, 0.0), (0.5, 0.0)),
    b=(0.0, 1.0),
    c=(0.0, 0.5),
)

rk2_heun = ButcherTableau(
    name="rk2_heun",
    order=2,
    a=((0.0, 0.0), (1.0, 0.0)),
    b=(0.5, 0.5),
    c=(0.0, 1.0),
)

rk3_ssp = ButcherTableau(
    name="rk3",
    order=3,
    a=((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), (0.25, 0.25, 0.0)),
    b=(1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0),
    c=(0.0, 1.0, 0.5),
)

rk4_classic = ButcherTableau(
    name="rk4",
    order=4,
    a=(
        (0.0, 0.0, 0.0, 0.0),
        (0.5, 0.0, 0.0, 0.0),
        (0.0, 0.5, 0.0, 0.0),
        (0.0, 0.0, 1.0, 0.0),
    ),
    b=(1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0),
    c=(0.0, 0.5, 0.5, 1.0),
)

_TABLEAUS: Dict[str, ButcherTableau] = {
    t.name: t
    for t in (forward_euler, rk2_midpoint, rk2_heun, rk3_ssp, rk4_classic)
}


def available_integrators() -> Tuple[str, ...]:
    return tuple(sorted(_TABLEAUS))


def get_integrator(name: str) -> RungeKutta:
    """Look up an explicit RK integrator by name (``euler``/``rk2``/...)."""
    try:
        return RungeKutta(_TABLEAUS[name])
    except KeyError:
        raise ValueError(
            f"unknown integrator {name!r}; available: {available_integrators()}"
        ) from None
