"""Threaded CPU backend — a thread pool over the near-field batches.

The engine's near-field batch closures are write-disjoint (each batch
owns the target rows of its groups) and internally serial, so running
them on a ``ThreadPoolExecutor`` is *bitwise identical* to the serial
reference regardless of scheduling: no accumulation order changes, only
which core runs which batch.  The heavy lifting inside a batch is BLAS
GEMMs and NumPy ufuncs, which release the GIL, so batches genuinely
overlap on multi-core hosts — this is the repo's largest single-node
lever on the ~90%-of-runtime near field.

Worker count resolution: ``REPRO_BACKEND_THREADS`` env var, else
``os.cpu_count()``.  With one worker (or one batch) the pool is skipped
entirely and the serial loop runs — a 1-core CI host pays nothing.

:mod:`numba` is an *optional* accelerator dependency: its presence is
detected behind a guarded import and reported via :meth:`describe` (the
CI optional-dependency matrix runs the threaded near-field suite with
numba installed to guard against interference with the threaded BLAS
path); the backend itself is stdlib-only and never requires it.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from threading import Lock
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.backends import KernelBackend, register_backend

__all__ = ["ThreadedBackend"]

try:  # guarded optional accelerator — detection only, never required
    import numba as _numba  # type: ignore

    _NUMBA_VERSION: Optional[str] = getattr(_numba, "__version__", "unknown")
except Exception:  # pragma: no cover - exercised on numba-equipped CI
    _NUMBA_VERSION = None


class ThreadedBackend(KernelBackend):
    """Thread-pool execution of the write-disjoint near-field batches."""

    name = "threaded"
    device = "cpu"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_width = 0
        self._lock = Lock()

    @property
    def workers(self) -> int:
        """Resolved worker count (explicit > env > ``os.cpu_count()``)."""
        if self._max_workers is not None:
            return max(1, int(self._max_workers))
        env = os.environ.get("REPRO_BACKEND_THREADS")
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                raise ValueError(
                    f"REPRO_BACKEND_THREADS must be an integer, got {env!r}"
                ) from None
        return os.cpu_count() or 1

    def _ensure_pool(self, width: int) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None or self._pool_width < width:
                if self._pool is not None:
                    self._pool.shutdown(wait=True)
                self._pool = ThreadPoolExecutor(
                    max_workers=width, thread_name_prefix="repro-backend"
                )
                self._pool_width = width
            return self._pool

    def map_batches(
        self, fn: Callable[[np.ndarray], None], batches: Sequence[np.ndarray]
    ) -> None:
        """Run the batch closures on the pool; exceptions re-raise here.

        Falls back to the serial loop when only one worker or one batch
        exists, so single-core hosts never pay pool overhead.
        """
        batches = list(batches)
        width = min(self.workers, len(batches))
        if width <= 1:
            for b in batches:
                fn(b)
            return
        pool = self._ensure_pool(width)
        # list() drains the iterator so worker exceptions surface at the
        # call site (the engine boundary), not silently in the pool
        list(pool.map(fn, batches))

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["workers"] = self.workers
        info["numba"] = _NUMBA_VERSION
        return info


register_backend(ThreadedBackend())
