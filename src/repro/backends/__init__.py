"""Pluggable kernel-execution backends — the array-namespace seam.

``BENCH_evaluator.json`` shows the near-field GEMM batches dominating a
cold fine evaluation (~90%), and the batched far/near engine
(:mod:`repro.tree.engine`) is already GEMM-shaped — exactly the form
that ports unchanged to another array namespace (CuPy) or to a thread
pool over independent batches.  This package provides the seam:

* :class:`KernelBackend` — the contract.  A backend owns

  - ``xp``: the array namespace the device-resident math runs in
    (:mod:`numpy` for the CPU backends, :mod:`cupy` on the GPU);
  - ``to_device`` / ``from_device``: the *only* sanctioned host/device
    transfer points, called at the engine boundary (no other layer may
    move arrays);
  - ``map_batches``: the execution strategy for the engine's
    write-disjoint near-field batch closures (serial loop, thread
    pool, ...).

* a registry (:func:`register_backend`, :func:`available_backends`,
  :func:`usable_backends`) and per-run selection via
  :func:`get_backend`: an explicit name wins, then the
  ``REPRO_BACKEND`` environment variable, then the ``"numpy"``
  reference backend.

Three backends ship:

``numpy``
    Reference implementation — a serial loop over batches, byte-identical
    to the pre-seam engine by construction (same operations, same order).
``threaded``
    stdlib ``ThreadPoolExecutor`` over the near-field batches.  Batches
    write disjoint target rows and every batch is internally serial, so
    the result is *bitwise identical* to ``numpy`` regardless of thread
    scheduling; the GEMMs release the GIL, so batches genuinely overlap
    on multi-core hosts.  Worker count: ``REPRO_BACKEND_THREADS`` or
    ``os.cpu_count()``.
``cupy``
    Optional GPU backend (import-guarded; cleanly unavailable without
    CuPy + a CUDA device).  The near-field pass runs on the device with
    one host→device transfer of positions/charges per evaluation and one
    device→host transfer of the accumulated outputs; tree build,
    traversal and the far pass stay on the host.  **Not** bitwise
    reproducible against the CPU backends (different GEMM reduction
    order) — see ``docs/backends.md`` for the per-backend guarantees.

Backends pickle as their registry name (``__reduce__``), so a
:class:`~repro.tree.TreeEvaluator` configured with any backend survives
dispatch into :class:`~repro.parallel.executor.ProcessExecutor` workers:
each worker re-resolves the backend on arrival (and raises
:class:`BackendUnavailableError` there if the worker host lacks the
dependency).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "ENV_VAR",
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "KernelBackend",
    "register_backend",
    "available_backends",
    "usable_backends",
    "get_backend",
]

#: environment variable consulted when no explicit backend is given
ENV_VAR = "REPRO_BACKEND"
#: the reference backend every equivalence statement is anchored to
DEFAULT_BACKEND = "numpy"


class BackendUnavailableError(ImportError):
    """A registered backend cannot run in this environment.

    Raised by :func:`get_backend` (and by backend resolution inside
    executor workers) when the backend's dependency is missing or no
    suitable hardware exists.  ``missing`` names the missing dependency
    so the message is actionable (``pip install cupy-cuda12x``, run on a
    GPU node, ...).
    """

    def __init__(self, backend: str, missing: str, hint: str = "") -> None:
        self.backend = backend
        self.missing = missing
        msg = f"kernel backend {backend!r} is unavailable: {missing}"
        if hint:
            msg = f"{msg} — {hint}"
        super().__init__(msg)


class KernelBackend:
    """Execution + residency strategy for the batched far/near engine.

    Subclasses override the class attributes and whichever hooks differ
    from the host-serial defaults.  Instances are registered singletons;
    identity comparisons (``backend is get_backend("numpy")``) are valid
    within a process, and pickling reduces to the registry name so the
    same identity is re-established across process boundaries.
    """

    #: registry name (also the ``REPRO_BACKEND`` value)
    name: str = "abstract"
    #: ``"cpu"`` or ``"gpu"`` — drives the engine's residency decision
    device: str = "cpu"

    # -- availability ------------------------------------------------------
    def missing_dependency(self) -> Optional[str]:
        """Human-readable description of what is missing, or ``None``.

        ``None`` means the backend is usable right now.  The check must
        be cheap and side-effect free — it runs inside error messages
        and ``usable_backends()``.
        """
        return None

    @property
    def available(self) -> bool:
        """Whether the backend can run in this environment."""
        return self.missing_dependency() is None

    def require(self) -> "KernelBackend":
        """Return ``self`` or raise :class:`BackendUnavailableError`."""
        missing = self.missing_dependency()
        if missing is not None:
            raise BackendUnavailableError(self.name, missing, hint=self._hint())
        return self

    def _hint(self) -> str:
        """Remediation hint appended to the unavailability error."""
        return ""

    # -- array namespace and transfer points -------------------------------
    @property
    def xp(self):
        """The array namespace device-resident math runs in."""
        return np

    def to_device(self, a: np.ndarray):
        """Move a host array to the backend's device (identity on CPU).

        One of the two sanctioned transfer points; called by the engine
        at the start of a device-resident pass, never from inner loops.
        """
        return a

    def from_device(self, a) -> np.ndarray:
        """Move a device array back to the host (identity on CPU)."""
        return a

    # -- execution strategy -------------------------------------------------
    def map_batches(
        self, fn: Callable[[np.ndarray], None], batches: Sequence[np.ndarray]
    ) -> None:
        """Run ``fn`` once per batch; batches must be write-disjoint.

        The engine guarantees that distinct batches touch disjoint
        output rows and share only read-only state, so any execution
        order (or overlap) yields bitwise-identical results.  The base
        implementation is the in-order serial loop.
        """
        for b in batches:
            fn(b)

    # -- introspection / plumbing ------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Diagnostic metadata (recorded into benchmark rows)."""
        return {
            "name": self.name,
            "device": self.device,
            "available": self.available,
        }

    def __reduce__(self):
        # pickle as the registry name: executor workers re-resolve the
        # backend (and surface BackendUnavailableError on *their* host)
        return (get_backend, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelBackend {self.name!r} ({self.device})>"


_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register a backend instance under its ``name`` (last wins)."""
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Names of every *registered* backend (usable here or not)."""
    return tuple(sorted(_REGISTRY))


def usable_backends() -> Tuple[str, ...]:
    """Names of the registered backends usable in this environment."""
    return tuple(n for n in available_backends() if _REGISTRY[n].available)


def get_backend(
    name: Union[str, KernelBackend, None] = None,
) -> KernelBackend:
    """Resolve a backend: explicit name > ``REPRO_BACKEND`` > ``numpy``.

    Accepts a registry name, an already-resolved :class:`KernelBackend`
    (validated and passed through), or ``None`` for the environment /
    default resolution.  Raises :class:`BackendUnavailableError` when
    the backend exists but cannot run here, and ``ValueError`` with the
    valid names when the name (or a mis-set ``REPRO_BACKEND``) is
    unknown.
    """
    if isinstance(name, KernelBackend):
        return name.require()
    source = "backend argument"
    if name is None:
        env = os.environ.get(ENV_VAR)
        if env:
            name, source = env, f"environment variable {ENV_VAR}"
        else:
            name = DEFAULT_BACKEND
    key = str(name).strip().lower()
    backend = _REGISTRY.get(key)
    if backend is None:
        raise ValueError(
            f"unknown kernel backend {name!r} (from {source}); "
            f"valid names: {', '.join(available_backends())}. "
            f"Unset {ENV_VAR} or pass backend= explicitly to override."
        )
    return backend.require()


# self-registering backend modules — import order fixes registry order
from repro.backends.numpy_backend import NumpyBackend  # noqa: E402
from repro.backends.threaded import ThreadedBackend  # noqa: E402
from repro.backends.cupy_backend import CupyBackend  # noqa: E402

__all__ += ["NumpyBackend", "ThreadedBackend", "CupyBackend"]
