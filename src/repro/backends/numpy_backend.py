"""The NumPy reference backend — serial, host-resident, always usable.

Every equivalence statement in the test suite is anchored to this
backend: it executes the engine's batch closures with the in-order
serial loop inherited from :class:`~repro.backends.KernelBackend`, so
results are byte-identical to the pre-seam engine by construction.
"""

from __future__ import annotations


from repro.backends import KernelBackend, register_backend

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Host-serial NumPy execution (the default and the reference)."""

    name = "numpy"
    device = "cpu"


register_backend(NumpyBackend())
