"""Optional CuPy (GPU) backend — import-guarded, cleanly unavailable.

Mirrors pySDC's CuPy deployment on JUWELS (space solver on the device,
orchestration on the host): the engine keeps tree build, moments,
traversal and the far pass on the host and runs the dominant near-field
GEMM batches on the GPU through the CuPy array namespace, with exactly
two transfer points per evaluation — :meth:`CupyBackend.to_device` for
positions/charges/group geometry on entry, :meth:`CupyBackend.from_device`
for the accumulated velocity/gradient on exit.

Availability is probed lazily and never crashes an import: without CuPy
(or without a visible CUDA device) the backend stays registered so it
shows up in ``available_backends()`` and error messages, but
``get_backend("cupy")`` raises :class:`~repro.backends.BackendUnavailableError`
naming the missing piece.

Determinism caveat: GPU GEMMs reduce in a different order than the CPU
reference, so ``cupy`` results match ``numpy`` to rounding error, *not*
bitwise — the equivalence tests compare it at theta tolerances, never
byte-for-byte (see ``docs/backends.md``).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.backends import KernelBackend, register_backend

__all__ = ["CupyBackend"]


def _import_cupy():
    """Import cupy or return ``None`` (never raises)."""
    try:  # guarded optional dependency
        import cupy  # type: ignore

        return cupy
    except Exception:
        return None


class CupyBackend(KernelBackend):
    """GPU execution of the near-field pass through the CuPy namespace."""

    name = "cupy"
    device = "gpu"

    def missing_dependency(self) -> Optional[str]:
        cupy = _import_cupy()
        if cupy is None:
            return "the 'cupy' package is not importable"
        try:
            if cupy.cuda.runtime.getDeviceCount() < 1:
                return "no CUDA device is visible"
        except Exception as exc:  # driver present but broken
            return f"CUDA runtime probe failed ({exc})"
        return None

    def _hint(self) -> str:
        return (
            "install cupy matching your CUDA toolkit (e.g. cupy-cuda12x) "
            "and run on a host with a visible GPU; CPU runs should use "
            "backend='numpy' or backend='threaded'"
        )

    @property
    def xp(self):
        cupy = _import_cupy()
        if cupy is None:  # pragma: no cover - guarded by require()
            self.require()
        return cupy

    def to_device(self, a: np.ndarray):
        """Host → device copy (one of the two sanctioned transfer points)."""
        return self.xp.asarray(a)

    def from_device(self, a) -> np.ndarray:
        """Device → host copy of an accumulated output block."""
        return self.xp.asnumpy(a)

    def describe(self) -> Dict[str, object]:  # pragma: no cover - needs GPU
        info = super().describe()
        cupy = _import_cupy()
        info["cupy"] = getattr(cupy, "__version__", None) if cupy else None
        if self.available:
            dev = cupy.cuda.Device()
            info["device_id"] = int(dev.id)
        return info


register_backend(CupyBackend())
