"""SFC domain decomposition and branch-node structure (paper Fig. 3).

The parallel Barnes-Hut code partitions the space-filling curve across
``P_S`` MPI ranks, each builds its local tree, and the ranks exchange their
*branch nodes* — the minimal set of octree cells covering each rank's
contiguous key range — to assemble the globally shared top of the tree.
Fig. 5 shows that this branch exchange dominates the runtime at small
particles-per-core counts; this module reproduces the decomposition so the
performance model can be calibrated with *real* branch counts instead of a
guessed formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Tuple

import numpy as np

from repro.tree.morton import (
    MAX_DEPTH,
    BoundingCube,
    hilbert_encode,
    morton_encode,
    quantize,
)
from repro.utils.validation import check_array

__all__ = [
    "DomainDecomposition",
    "sfc_partition",
    "cover_key_range",
    "branch_counts",
    "partition_box_surface",
]

Curve = Literal["morton", "hilbert"]


@dataclass
class DomainDecomposition:
    """Partition of particles over ranks along a space-filling curve."""

    curve: Curve
    n_ranks: int
    cube: BoundingCube
    #: rank of each particle (original order)
    rank_of: np.ndarray
    #: particle indices sorted along the curve
    order: np.ndarray
    #: per-rank [start, end) slices into the sorted order
    rank_start: np.ndarray
    rank_end: np.ndarray
    #: full-depth keys in sorted order (placeholder stripped)
    keys_sorted: np.ndarray

    @property
    def counts(self) -> np.ndarray:
        return self.rank_end - self.rank_start

    @property
    def imbalance(self) -> float:
        """max/mean particle count over ranks (1.0 = perfect)."""
        counts = self.counts
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0


def sfc_partition(
    positions: np.ndarray,
    n_ranks: int,
    curve: Curve = "morton",
    depth: int = MAX_DEPTH,
) -> DomainDecomposition:
    """Split particles into ``n_ranks`` contiguous curve segments.

    Counts are balanced to within one particle, mirroring PEPC's weighted
    key-space partitioning in the uniform-weight case.
    """
    positions = check_array("positions", positions, shape=(None, 3), dtype=np.float64)
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    n = positions.shape[0]
    if n < n_ranks:
        raise ValueError(f"cannot split {n} particles over {n_ranks} ranks")
    cube = BoundingCube.of_points(positions)
    ijk = quantize(positions, cube, depth)
    if curve == "morton":
        keys = morton_encode(ijk, depth)
    elif curve == "hilbert":
        keys = hilbert_encode(ijk, depth)
    else:
        raise ValueError(f"unknown curve {curve!r}")
    placeholder = np.uint64(1) << np.uint64(3 * depth)
    keys = keys & (placeholder - np.uint64(1))
    order = np.argsort(keys, kind="stable").astype(np.int64)
    keys_sorted = keys[order]

    bounds = np.linspace(0, n, n_ranks + 1).astype(np.int64)
    rank_of = np.empty(n, dtype=np.int64)
    for r in range(n_ranks):
        rank_of[order[bounds[r]:bounds[r + 1]]] = r
    return DomainDecomposition(
        curve=curve,
        n_ranks=n_ranks,
        cube=cube,
        rank_of=rank_of,
        order=order,
        rank_start=bounds[:-1],
        rank_end=bounds[1:],
        keys_sorted=keys_sorted,
    )


def cover_key_range(lo: int, hi: int, depth: int = MAX_DEPTH) -> List[Tuple[int, int]]:
    """Minimal set of aligned octree cells covering keys ``[lo, hi]``.

    Returns ``(cell_start_key, level)`` pairs; a level-``l`` cell spans
    ``8^(depth - l)`` full-depth keys.  This is the branch-node set of a
    rank owning that contiguous curve segment.
    """
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    if lo < 0 or hi >= (1 << (3 * depth)):
        raise ValueError(f"range [{lo}, {hi}] outside key space")
    cells: List[Tuple[int, int]] = []
    pos = lo
    while pos <= hi:
        span = 1
        level = depth
        while level > 0:
            nxt = span << 3
            if pos % nxt != 0 or pos + nxt - 1 > hi:
                break
            span = nxt
            level -= 1
        cells.append((pos, level))
        pos += span
    return cells


def branch_counts(decomp: DomainDecomposition, depth: int = MAX_DEPTH) -> np.ndarray:
    """Number of branch nodes each rank contributes.

    Uses the key interval actually occupied by each rank's particles (the
    PEPC convention); the total is the size of the globally shared tree's
    bottom boundary, i.e. the branch-exchange message volume.
    """
    out = np.zeros(decomp.n_ranks, dtype=np.int64)
    for r in range(decomp.n_ranks):
        s, e = decomp.rank_start[r], decomp.rank_end[r]
        if e <= s:
            continue
        lo = int(decomp.keys_sorted[s])
        hi = int(decomp.keys_sorted[e - 1])
        out[r] = len(cover_key_range(lo, hi, depth))
    return out


def partition_box_surface(
    positions: np.ndarray, decomp: DomainDecomposition
) -> float:
    """Sum of per-rank bounding-box surface areas (partition quality).

    Compact, well-localised partitions (Hilbert) have smaller total
    surface than stripy ones (Morton) — less halo traffic in a real code.
    """
    positions = np.asarray(positions, dtype=np.float64)
    total = 0.0
    for r in range(decomp.n_ranks):
        s, e = decomp.rank_start[r], decomp.rank_end[r]
        pts = positions[decomp.order[s:e]]
        if pts.shape[0] == 0:
            continue
        ext = pts.max(axis=0) - pts.min(axis=0)
        total += 2.0 * (ext[0] * ext[1] + ext[1] * ext[2] + ext[0] * ext[2])
    return float(total)
