"""Reference per-group tree evaluation (pre-batching implementation).

This module preserves the original evaluator loop structure — one Python
iteration per target group, with argsort + ``searchsorted`` segment
bookkeeping and per-leaf ``np.concatenate`` near-field gathers — exactly
as it shipped before the batched engine (:mod:`repro.tree.engine`)
replaced it.

It exists for two reasons:

* the equivalence test suite checks the batched engine against this path
  bit-for-bit-close (same traversal, same expansion math, different
  summation order), independently of the O(N^2) direct references;
* ``benchmarks/bench_evaluator_hotpath.py`` uses it as the baseline the
  batched engine's speedup is measured against.

It is *not* part of the production pipeline and takes its parameters
explicitly rather than via evaluator objects.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tree.build import build_octree
from repro.tree.evaluate import evaluate_coulomb_far, evaluate_vortex_far
from repro.tree.mac import MACVariant
from repro.tree.multipole import (
    compute_coulomb_moments,
    compute_vortex_moments,
)
from repro.tree.traversal import dual_traversal
from repro.vortex.kernels import SingularKernel, SmoothingKernel
from repro.vortex.rhs import VelocityField, biot_savart_direct

__all__ = ["reference_vortex_field", "reference_coulomb_fields"]


def _group_slices(
    sorted_by: np.ndarray, n_groups: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Start/end offsets per group in an array sorted by group index."""
    starts = np.searchsorted(sorted_by, np.arange(n_groups), side="left")
    ends = np.searchsorted(sorted_by, np.arange(n_groups), side="right")
    return starts, ends


def reference_vortex_field(
    positions: np.ndarray,
    charges: np.ndarray,
    kernel: SmoothingKernel,
    sigma: float,
    theta: float = 0.3,
    order: int = 2,
    leaf_size: int = 32,
    mac_variant: MACVariant = "bh",
    gradient: bool = True,
    exclude_zero: Optional[bool] = None,
) -> VelocityField:
    """Vortex RHS by the original per-group loops (caller particle order)."""
    if exclude_zero is None:
        exclude_zero = (
            isinstance(kernel, SingularKernel) and kernel.softening == 0.0
        )
    tree = build_octree(positions, leaf_size=leaf_size)
    moments = compute_vortex_moments(tree, charges)
    lists = dual_traversal(
        tree, theta, node_bmax=moments.bmax, variant=mac_variant
    )
    charges_sorted = charges[tree.order]
    n = positions.shape[0]
    vel = np.zeros((n, 3))
    grad = np.zeros((n, 3, 3)) if gradient else None

    far_order = np.argsort(lists.far_group, kind="stable")
    far_group = lists.far_group[far_order]
    far_node = lists.far_node[far_order]
    near_order = np.argsort(lists.near_group, kind="stable")
    near_group = lists.near_group[near_order]
    near_node = lists.near_node[near_order]
    fstart, fend = _group_slices(far_group, lists.n_groups)
    nstart, nend = _group_slices(near_group, lists.n_groups)

    for gi in range(lists.n_groups):
        leaf = lists.groups[gi]
        lo, hi = tree.node_start[leaf], tree.node_end[leaf]
        nodes = far_node[fstart[gi]:fend[gi]]
        if nodes.size == 0:
            continue
        u, g = evaluate_vortex_far(
            tree.positions[lo:hi],
            moments.center[nodes],
            moments.m0[nodes],
            moments.m1[nodes],
            moments.m2[nodes],
            kernel,
            sigma,
            order=order,
            gradient=gradient,
        )
        vel[lo:hi] += u
        if gradient:
            grad[lo:hi] += g

    for gi in range(lists.n_groups):
        leaf = lists.groups[gi]
        lo, hi = tree.node_start[leaf], tree.node_end[leaf]
        src_leaves = near_node[nstart[gi]:nend[gi]]
        if src_leaves.size == 0:
            continue
        seg = [
            slice(tree.node_start[s], tree.node_end[s]) for s in src_leaves
        ]
        src_pos = np.concatenate([tree.positions[s] for s in seg])
        src_ch = np.concatenate([charges_sorted[s] for s in seg])
        field = biot_savart_direct(
            tree.positions[lo:hi],
            src_pos,
            src_ch,
            kernel,
            sigma,
            gradient=gradient,
            exclude_zero=exclude_zero,
        )
        vel[lo:hi] += field.velocity
        if gradient:
            grad[lo:hi] += field.gradient

    out_v = np.empty_like(vel)
    out_v[tree.order] = vel
    out_g = None
    if gradient:
        out_g = np.empty_like(grad)
        out_g[tree.order] = grad
    return VelocityField(out_v, out_g)


def reference_coulomb_fields(
    positions: np.ndarray,
    charges: np.ndarray,
    theta: float = 0.6,
    order: int = 2,
    leaf_size: int = 32,
    softening: float = 0.0,
    mac_variant: MACVariant = "bh",
) -> Tuple[np.ndarray, np.ndarray]:
    """Coulomb potential/field by the original per-group loops."""
    kernel = SingularKernel(softening=softening)
    tree = build_octree(positions, leaf_size=leaf_size)
    moments = compute_coulomb_moments(tree, charges)
    lists = dual_traversal(
        tree, theta, node_bmax=moments.bmax, variant=mac_variant
    )
    q_sorted = charges[tree.order]
    n = positions.shape[0]
    phi = np.zeros(n)
    field = np.zeros((n, 3))

    far_order = np.argsort(lists.far_group, kind="stable")
    far_group = lists.far_group[far_order]
    far_node = lists.far_node[far_order]
    near_order = np.argsort(lists.near_group, kind="stable")
    near_group = lists.near_group[near_order]
    near_node = lists.near_node[near_order]
    fstart, fend = _group_slices(far_group, lists.n_groups)
    nstart, nend = _group_slices(near_group, lists.n_groups)

    inv_four_pi = 1.0 / (4.0 * np.pi)
    for gi in range(lists.n_groups):
        leaf = lists.groups[gi]
        lo, hi = tree.node_start[leaf], tree.node_end[leaf]
        nodes = far_node[fstart[gi]:fend[gi]]
        if nodes.size == 0:
            continue
        p, e = evaluate_coulomb_far(
            tree.positions[lo:hi],
            moments.center[nodes],
            moments.m0[nodes],
            moments.m1[nodes],
            moments.m2[nodes],
            kernel,
            1.0,
            order=order,
        )
        phi[lo:hi] += p
        field[lo:hi] += e

    for gi in range(lists.n_groups):
        leaf = lists.groups[gi]
        lo, hi = tree.node_start[leaf], tree.node_end[leaf]
        src_leaves = near_node[nstart[gi]:nend[gi]]
        if src_leaves.size == 0:
            continue
        seg = [
            slice(tree.node_start[s], tree.node_end[s]) for s in src_leaves
        ]
        src_pos = np.concatenate([tree.positions[s] for s in seg])
        src_q = np.concatenate([q_sorted[s] for s in seg])
        r = tree.positions[lo:hi, None, :] - src_pos[None, :, :]
        d2 = np.einsum("tsk,tsk->ts", r, r) + kernel.softening**2
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = np.where(d2 > 0.0, 1.0 / np.sqrt(d2), 0.0)
        phi[lo:hi] += inv_four_pi * (inv @ src_q)
        f3 = inv**3 * src_q[None, :]
        field[lo:hi] += inv_four_pi * np.einsum("ts,tsk->tk", f3, r)

    out_phi = np.empty_like(phi)
    out_phi[tree.order] = phi
    out_field = np.empty_like(field)
    out_field[tree.order] = field
    return out_phi, out_field
