"""Cluster-frame monomial factorization of the vortex far field.

The pairwise expansion (:func:`repro.tree.evaluate.evaluate_vortex_far_pairs`)
is, per (target, cluster) pair with ``r = target - center_k``,

    u_a   = sum_i D_i(r^2) P_i[a](r),
    du_ad = sum_i D_i(r^2) Q_i[ad](r),

where every ``P_i`` / ``Q_i`` is a *polynomial* in ``r`` (degree ``<= i``
for ``P_i``, and ``D_{i+1}`` picks up the extra ``(x) r`` factor of the
gradient) whose coefficients are linear in the cluster moments.  This
module extracts those coefficients once per cluster into a weight matrix
``W[k]`` of shape (45, 12), so the per-pair work collapses to

    out[p, :] = Ycat[p, :] @ W[node(p)]           (one batched GEMM)

with ``Ycat`` the radial-chain values spread over the monomial basis of
``r``.  The basis is degree-major (1; x, y, z; x^2, xy, ...), 35
monomials through degree four, offsets per degree in ``DEG_START``.

Column layout of ``Ycat`` (rows of ``W``), order 2 with gradient:

    [ D1 * psi[0:4] | D2 * psi[0:10] | D3 * psi[4:20] | D4 * psi[20:35] ]

Block ``i`` holds ``D_{i+1}`` times exactly the monomials its
polynomials can produce.  Lower orders / velocity-only evaluations are
column prefixes: chain depth ``need`` uses the first
``BLOCK_END[need - 1]`` columns.

``W`` has 12 output columns: velocity component ``a`` in columns 0..2,
gradient ``du_a/dx_d`` in column ``3 + 3 a + d``.  The factorization is
exact (polynomials terminate, nothing truncated); equivalence tests
assert agreement with the pairwise path to rounding error.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "MONOMIALS",
    "DEG_START",
    "BLOCK_COL",
    "BLOCK_LO",
    "BLOCK_END",
    "monomial_basis",
    "monomial_rows",
    "node_far_weights",
]

#: monomials of degree <= 4, as sorted variable-index tuples, degree-major
MONOMIALS: Tuple[Tuple[int, ...], ...] = tuple(
    c for deg in range(5) for c in combinations_with_replacement(range(3), deg)
)
_MONO_INDEX = {c: i for i, c in enumerate(MONOMIALS)}
#: first column of each degree block (plus the total count)
DEG_START: Tuple[int, ...] = (0, 1, 4, 10, 20, 35)

#: Ycat column offset of block i (the weights multiplying D_{i+1})
BLOCK_COL: Tuple[int, ...] = (0, 4, 14, 30)
#: first monomial index covered by block i
BLOCK_LO: Tuple[int, ...] = (0, 0, 4, 20)
#: one-past-the-end Ycat column of block i
BLOCK_END: Tuple[int, ...] = (4, 14, 30, 45)

#: nonzero Levi-Civita entries as (a, b, c, sign)
_EPS_TERMS = (
    (0, 1, 2, 1.0), (1, 2, 0, 1.0), (2, 0, 1, 1.0),
    (0, 2, 1, -1.0), (2, 1, 0, -1.0), (1, 0, 2, -1.0),
)


def monomial_basis(delta: np.ndarray, n_mono: int) -> np.ndarray:
    """Values ``phi_m(delta)`` of the first ``n_mono`` monomials, (P, n).

    Built incrementally — each monomial is its sorted prefix times one
    more coordinate — so the whole table costs ``n_mono - 1`` vector
    multiplies.
    """
    out = np.empty((delta.shape[0], n_mono))
    out[:, 0] = 1.0
    for i in range(1, n_mono):
        c = MONOMIALS[i]
        np.multiply(
            out[:, _MONO_INDEX[c[:-1]]], delta[:, c[-1]], out=out[:, i]
        )
    return out


def monomial_rows(rt: np.ndarray, n_mono: int, out: np.ndarray) -> None:
    """Transposed monomial table: fill rows ``out[:n_mono]``, each (P,).

    ``rt`` is (3, P) — coordinate rows.  Same incremental recurrence as
    :func:`monomial_basis`, but row-major so every multiply runs over a
    contiguous lane vector (the layout the batched far driver wants).

    Array-namespace generic: the recurrence is one ``np.multiply`` with
    an explicit ``out=`` per monomial, which dispatches through
    ``__array_ufunc__`` — pass device-resident ``rt``/``out`` (e.g.
    CuPy, :mod:`repro.backends`) and the table is built on the device.
    (:func:`monomial_basis` is *not* generic: it allocates its result
    through ``np.empty`` and therefore stays on the host.)
    """
    out[0] = 1.0
    for i in range(1, n_mono):
        c = MONOMIALS[i]
        np.multiply(out[_MONO_INDEX[c[:-1]]], rt[c[-1]], out=out[i])


def node_far_weights(
    m0: np.ndarray,
    m1: Optional[np.ndarray],
    m2: Optional[np.ndarray],
    order: int,
    gradient: bool,
) -> np.ndarray:
    """Per-cluster far-field weight matrices ``W``, shape (U, 45, 12).

    Transcribes the combined-term closed form of
    :func:`~repro.tree.evaluate.evaluate_vortex_far_pairs` term by term
    into monomial coefficients (module docstring has the block layout).
    Columns of unused blocks / outputs stay zero and are sliced away by
    the caller, so the same array serves every chain-depth prefix.
    """
    if order not in (0, 1, 2):
        raise ValueError(f"order must be 0, 1 or 2, got {order}")
    u = m0.shape[0]
    w = np.zeros((u, 45, 12))
    if u == 0:
        return w

    def add(block: int, idx: Tuple[int, ...], out: int, coeff) -> None:
        col = BLOCK_COL[block] + _MONO_INDEX[tuple(sorted(idx))] - BLOCK_LO[block]
        w[:, col, out] += coeff

    vec1 = None
    if order >= 1:
        if m1 is None:
            raise ValueError("order >= 1 requires first moments")
        vec1 = np.stack(
            [m1[:, 2, 1] - m1[:, 1, 2],
             m1[:, 0, 2] - m1[:, 2, 0],
             m1[:, 1, 0] - m1[:, 0, 1]],
            axis=-1,
        )
    tr = None
    if order >= 2:
        if m2 is None:
            raise ValueError("order >= 2 requires second moments")
        tr = np.einsum("ucjj->uc", m2)

    # --- velocity: output column a ------------------------------------
    for a, b, c, s in _EPS_TERMS:
        add(0, (b,), a, s * m0[:, c])                        # D1 r x M0
        if order >= 1:
            for j in range(3):
                add(1, (b, j), a, -s * m1[:, c, j])          # -D2 r x w
        if order >= 2:
            add(1, (b,), a, s * tr[:, c])                    # D2 r x tr
            for k in range(3):
                add(1, (k,), a, 2.0 * s * m2[:, c, b, k])    # 2 D2 vec(m)
                for j in range(3):
                    add(2, (b, j, k), a, s * m2[:, c, j, k])  # D3 r x v
    if order >= 1:
        for a in range(3):
            add(0, (), a, -vec1[:, a])                       # -D1 vec(M1)

    if not gradient:
        return w

    # --- gradient: output column 3 + 3a + d ---------------------------
    for a, d, m, s in _EPS_TERMS:                            # E(.) terms
        add(0, (), 3 + 3 * a + d, s * m0[:, m])              # D1 E(M0)
        if order >= 1:
            for j in range(3):
                add(1, (j,), 3 + 3 * a + d, -s * m1[:, m, j])    # -D2 E(w)
        if order >= 2:
            add(1, (), 3 + 3 * a + d, s * tr[:, m])          # D2 E(tr)
            for j in range(3):
                for k in range(3):
                    add(2, (j, k), 3 + 3 * a + d, s * m2[:, m, j, k])  # D3 E(v)
    for a, b, c, s in _EPS_TERMS:
        for d in range(3):
            o = 3 + 3 * a + d
            add(1, (b, d), o, s * m0[:, c])                  # D2 (r x M0)(x)r
            if order >= 1:
                add(1, (b,), o, -s * m1[:, c, d])            # -D2 r X M1
                for j in range(3):
                    add(2, (b, j, d), o, -s * m1[:, c, j])   # -D3 (r x w)(x)r
            if order >= 2:
                add(2, (b, d), o, s * tr[:, c])              # D3 (r x tr)(x)r
                add(1, (), o, 2.0 * s * m2[:, c, b, d])      # 2 D2 vec2
                for k in range(3):
                    add(2, (k, d), o, 2.0 * s * m2[:, c, b, k])  # 2 D3 vec(m)(x)r
                    add(2, (b, k), o, 2.0 * s * m2[:, c, d, k])  # 2 D3 r X m
                    for j in range(3):
                        add(3, (b, j, k, d), o, s * m2[:, c, j, k])  # D4 (r x v)(x)r
    if order >= 1:
        for a in range(3):
            for d in range(3):
                add(1, (d,), 3 + 3 * a + d, -vec1[:, a])     # -D2 vec(M1)(x)r
    return w
