"""Multirate far-field evaluator (paper Sec. V outlook).

The paper's conclusion sketches a refinement of the MAC-based coarsening:
*"coarse problems could update the contribution from well separated
particle clusters less frequently than nearby clusters.  The spatial
decomposition implicit in the tree structure provides a natural hierarchy
of spatial scales, and such a splitting could be combined with the
acceptance criterion model used here."*

:class:`MultirateTreeEvaluator` implements exactly that splitting: the
force is decomposed by the MAC into near field (direct) and far field
(multipoles); the far-field contribution is *frozen* and reused while
the particles stay within a displacement tolerance of the freeze
configuration, and only the near field is recomputed per call.  Far
contributions vary slowly, so this gives an even cheaper coarse
propagator than a larger theta alone — PFASST's FAS correction absorbs
the coarse-model defect exactly like any other.

The refresh policy is *displacement-based* rather than call-count-based
on purpose: inside an iterative method like PFASST, a call-count policy
makes the coarse operator depend on the call parity and destroys the
fixed point (the iteration then cycles instead of converging).  With a
displacement trigger the operator is piecewise constant in state space:
as the iteration converges, positions stop moving, the frozen field
stops refreshing, and the tau-corrected coarse equation has a genuine
fixed point at the restricted fine solution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tree.evaluator import TreeEvaluator
from repro.vortex.kernels import SmoothingKernel
from repro.vortex.problem import FieldEvaluator
from repro.vortex.rhs import VelocityField

__all__ = ["MultirateTreeEvaluator"]


class MultirateTreeEvaluator(FieldEvaluator):
    """Tree evaluator with a displacement-frozen far field.

    Parameters
    ----------
    kernel, sigma, theta, order, leaf_size :
        Forwarded to the underlying :class:`TreeEvaluator`.
    freeze_tolerance :
        The far field is recomputed whenever any particle has moved more
        than this distance (or the charges have drifted by the analogous
        relative amount) since the last refresh; 0 recovers the plain
        tree evaluator.  A good default is a small fraction of sigma.
    """

    def __init__(
        self,
        kernel: SmoothingKernel | str,
        sigma: float,
        theta: float = 0.6,
        order: int = 2,
        leaf_size: int = 32,
        freeze_tolerance: float = 0.0,
    ) -> None:
        super().__init__()
        if freeze_tolerance < 0:
            raise ValueError(
                f"freeze_tolerance must be >= 0, got {freeze_tolerance}"
            )
        self.freeze_tolerance = float(freeze_tolerance)
        # full evaluator (near + far) used on refresh calls; also the
        # source of theta / kernel configuration for the near-only pass
        self._full = TreeEvaluator(kernel, sigma, theta=theta, order=order,
                                   leaf_size=leaf_size)
        self._near_only = self._full
        self._frozen_far_velocity: Optional[np.ndarray] = None
        self._frozen_far_gradient: Optional[np.ndarray] = None
        self._frozen_positions: Optional[np.ndarray] = None
        self._frozen_charges: Optional[np.ndarray] = None
        self.refresh_count = 0
        self.frozen_count = 0

    def _needs_refresh(
        self, positions: np.ndarray, charges: np.ndarray, gradient: bool
    ) -> bool:
        if (
            self._frozen_far_velocity is None
            or self._frozen_positions is None
            or self._frozen_positions.shape != positions.shape
            or (gradient and self._frozen_far_gradient is None)
        ):
            return True
        if self.freeze_tolerance == 0.0:
            return True
        move = np.max(np.abs(positions - self._frozen_positions))
        if move > self.freeze_tolerance:
            return True
        charge_scale = max(np.max(np.abs(self._frozen_charges)), 1e-300)
        drift = np.max(np.abs(charges - self._frozen_charges)) / charge_scale
        return drift > self.freeze_tolerance

    def _evaluate(
        self, positions: np.ndarray, charges: np.ndarray, gradient: bool
    ) -> VelocityField:
        if self._needs_refresh(positions, charges, gradient):
            full = self._full.field(positions, charges, gradient=gradient)
            near = self._near_field(positions, charges, gradient)
            self._frozen_far_velocity = full.velocity - near.velocity
            self._frozen_far_gradient = (
                full.gradient - near.gradient if gradient else None
            )
            self._frozen_positions = positions.copy()
            self._frozen_charges = charges.copy()
            self.refresh_count += 1
            return full
        self.frozen_count += 1
        near = self._near_field(positions, charges, gradient)
        velocity = near.velocity + self._frozen_far_velocity
        grad = None
        if gradient:
            grad = near.gradient + self._frozen_far_gradient
        return VelocityField(velocity, grad)

    def _near_field(
        self, positions: np.ndarray, charges: np.ndarray, gradient: bool
    ) -> VelocityField:
        """Near-field part only: the batched near pass, skipping the far
        (multipole) phase.  Shares the full evaluator's state cache, so a
        refresh call's tree/moments/traversal are reused here for free."""
        return self._near_only._evaluate(
            positions, charges, gradient, include_far=False
        )
