"""Multirate far-field evaluator (paper Sec. V outlook).

The paper's conclusion sketches a refinement of the MAC-based coarsening:
*"coarse problems could update the contribution from well separated
particle clusters less frequently than nearby clusters.  The spatial
decomposition implicit in the tree structure provides a natural hierarchy
of spatial scales, and such a splitting could be combined with the
acceptance criterion model used here."*

:class:`MultirateTreeEvaluator` implements exactly that splitting: the
force is decomposed by the MAC into near field (direct) and far field
(multipoles); the far-field contribution is *frozen* and reused while
the particles stay within a displacement tolerance of the freeze
configuration, and only the near field is recomputed per call.  Far
contributions vary slowly, so this gives an even cheaper coarse
propagator than a larger theta alone — PFASST's FAS correction absorbs
the coarse-model defect exactly like any other.

The refresh policy is *displacement-based* rather than call-count-based
on purpose: inside an iterative method like PFASST, a call-count policy
makes the coarse operator depend on the call parity and destroys the
fixed point (the iteration then cycles instead of converging).  With a
displacement trigger the operator is piecewise constant in state space:
as the iteration converges, positions stop moving, the frozen field
stops refreshing, and the tau-corrected coarse equation has a genuine
fixed point at the restricted fine solution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tree.evaluator import TreeEvaluator
from repro.vortex.kernels import SmoothingKernel
from repro.vortex.problem import FieldEvaluator
from repro.vortex.rhs import VelocityField

__all__ = ["MultirateTreeEvaluator"]


class MultirateTreeEvaluator(FieldEvaluator):
    """Tree evaluator with a displacement-frozen far field.

    Parameters
    ----------
    kernel, sigma, theta, order, leaf_size :
        Forwarded to the underlying :class:`TreeEvaluator`.
    freeze_tolerance :
        The far field is recomputed whenever any particle has moved more
        than this distance (or the charges have drifted by the analogous
        relative amount) since the last refresh; 0 recovers the plain
        tree evaluator.  A good default is a small fraction of sigma.
    """

    def __init__(
        self,
        kernel: SmoothingKernel | str,
        sigma: float,
        theta: float = 0.6,
        order: int = 2,
        leaf_size: int = 32,
        freeze_tolerance: float = 0.0,
    ) -> None:
        super().__init__()
        if freeze_tolerance < 0:
            raise ValueError(
                f"freeze_tolerance must be >= 0, got {freeze_tolerance}"
            )
        self.freeze_tolerance = float(freeze_tolerance)
        # full evaluator (near + far) used on refresh calls; also the
        # source of theta / kernel configuration for the near-only pass
        self._full = TreeEvaluator(kernel, sigma, theta=theta, order=order,
                                   leaf_size=leaf_size)
        self._near_only = self._full
        self._frozen_far_velocity: Optional[np.ndarray] = None
        self._frozen_far_gradient: Optional[np.ndarray] = None
        self._frozen_positions: Optional[np.ndarray] = None
        self._frozen_charges: Optional[np.ndarray] = None
        self.refresh_count = 0
        self.frozen_count = 0

    def _needs_refresh(
        self, positions: np.ndarray, charges: np.ndarray, gradient: bool
    ) -> bool:
        if (
            self._frozen_far_velocity is None
            or self._frozen_positions is None
            or self._frozen_positions.shape != positions.shape
            or (gradient and self._frozen_far_gradient is None)
        ):
            return True
        if self.freeze_tolerance == 0.0:
            return True
        move = np.max(np.abs(positions - self._frozen_positions))
        if move > self.freeze_tolerance:
            return True
        charge_scale = max(np.max(np.abs(self._frozen_charges)), 1e-300)
        drift = np.max(np.abs(charges - self._frozen_charges)) / charge_scale
        return drift > self.freeze_tolerance

    def _evaluate(
        self, positions: np.ndarray, charges: np.ndarray, gradient: bool
    ) -> VelocityField:
        if self._needs_refresh(positions, charges, gradient):
            full = self._full.field(positions, charges, gradient=gradient)
            near = self._near_field(positions, charges, gradient)
            self._frozen_far_velocity = full.velocity - near.velocity
            self._frozen_far_gradient = (
                full.gradient - near.gradient if gradient else None
            )
            self._frozen_positions = positions.copy()
            self._frozen_charges = charges.copy()
            self.refresh_count += 1
            return full
        self.frozen_count += 1
        near = self._near_field(positions, charges, gradient)
        velocity = near.velocity + self._frozen_far_velocity
        grad = None
        if gradient:
            grad = near.gradient + self._frozen_far_gradient
        return VelocityField(velocity, grad)

    def _near_field(
        self, positions: np.ndarray, charges: np.ndarray, gradient: bool
    ) -> VelocityField:
        """Near-field part only: build + traverse, evaluate near pairs,
        skip the far (multipole) loop entirely."""
        ev = self._near_only
        from repro.tree.build import build_octree
        from repro.tree.multipole import compute_vortex_moments
        from repro.tree.traversal import dual_traversal
        from repro.vortex.rhs import biot_savart_direct

        tree = build_octree(positions, leaf_size=ev.leaf_size)
        moments = compute_vortex_moments(tree, charges)
        lists = dual_traversal(tree, ev.theta, node_bmax=moments.bmax,
                               variant=ev.mac_variant)
        charges_sorted = charges[tree.order]
        n = positions.shape[0]
        vel = np.zeros((n, 3))
        grad = np.zeros((n, 3, 3)) if gradient else None
        order = np.argsort(lists.near_group, kind="stable")
        near_group = lists.near_group[order]
        near_node = lists.near_node[order]
        starts = np.searchsorted(near_group, np.arange(lists.n_groups), "left")
        ends = np.searchsorted(near_group, np.arange(lists.n_groups), "right")
        for gi in range(lists.n_groups):
            leaf = lists.groups[gi]
            lo, hi = tree.node_start[leaf], tree.node_end[leaf]
            src = near_node[starts[gi]:ends[gi]]
            if src.size == 0:
                continue
            seg = [slice(tree.node_start[s], tree.node_end[s]) for s in src]
            src_pos = np.concatenate([tree.positions[s] for s in seg])
            src_ch = np.concatenate([charges_sorted[s] for s in seg])
            field = biot_savart_direct(
                tree.positions[lo:hi], src_pos, src_ch, ev.kernel,
                ev.sigma, gradient=gradient,
                exclude_zero=ev._exclude_zero,
            )
            vel[lo:hi] += field.velocity
            if gradient:
                grad[lo:hi] += field.gradient
        out_v = np.empty_like(vel)
        out_v[tree.order] = vel
        out_g = None
        if gradient:
            out_g = np.empty_like(grad)
            out_g[tree.order] = grad
        return VelocityField(out_v, out_g)
