"""Multipole moments of particle clusters (paper Sec. III-A).

For *vortex* particles the cluster carries vector charges
``alpha_p = omega_p vol_p`` and the streamfunction expansion about the
cluster center ``c`` needs, with ``d_p = x_p - c``:

    M0_i    = sum_p alpha_pi                     (monopole,   3)
    M1_ij   = sum_p alpha_pi d_pj                (dipole,     3x3)
    M2_ijk  = 1/2 sum_p alpha_pi d_pj d_pk       (quadrupole, 3x3x3 sym jk)

For *Coulomb/gravity* particles the charges are scalars and the same
machinery runs with one fewer tensor slot.  Both are computed by one
vectorised pass over the Morton-sorted particle arrays (``reduceat`` per
leaf), followed by a level-by-level upward translation of child moments to
parent centers:

    M0^P  = sum_c M0^c
    M1^P  = sum_c M1^c + M0^c (x) s_c
    M2^P  = sum_c M2^c + sym(M1^c (x) s_c) + 1/2 M0^c (x) s_c (x) s_c

with ``s_c = center_c - center_P``.  The shift is exact: moments about any
center represent the same field.

``bmax`` (distance from the expansion center to the farthest particle of
the cluster) is also accumulated for the Salmon-Warren style MAC variant.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.tree.build import Octree
from repro.utils.validation import check_array

__all__ = ["VortexMoments", "CoulombMoments", "compute_vortex_moments",
           "compute_coulomb_moments"]

#: process-unique identity for each moment set.  Lazy caches derived
#: from moment *values* (the engine's cluster-frame far weights) key on
#: this instead of ``id(...)``, which the allocator reuses.
_MOMENT_TOKENS = itertools.count()


def _segment_sum(values: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Sum ``values`` (N, ...) over [start, end) segments; empty -> 0."""
    if starts.size == 0:
        return np.zeros((0,) + values.shape[1:], dtype=np.float64)
    cum = np.concatenate(
        [np.zeros((1,) + values.shape[1:]), np.cumsum(values, axis=0)], axis=0
    )
    return cum[ends] - cum[starts]


@dataclass
class VortexMoments:
    """Per-node multipole moments for vector (vortex) charges."""

    center: np.ndarray  # (n_nodes, 3) expansion centers
    m0: np.ndarray  # (n_nodes, 3)
    m1: np.ndarray  # (n_nodes, 3, 3)  m1[n, i, j] = sum alpha_i d_j
    m2: np.ndarray  # (n_nodes, 3, 3, 3) with the 1/2 included
    bmax: np.ndarray  # (n_nodes,)
    #: total absolute charge |alpha| per node (error-bound diagnostics)
    abs_charge: np.ndarray
    #: identity of this moment set, for moment-derived lazy caches
    token: int = field(default_factory=_MOMENT_TOKENS.__next__)


@dataclass
class CoulombMoments:
    """Per-node multipole moments for scalar (Coulomb/gravity) charges."""

    center: np.ndarray
    m0: np.ndarray  # (n_nodes,)
    m1: np.ndarray  # (n_nodes, 3)
    m2: np.ndarray  # (n_nodes, 3, 3) with the 1/2 included
    bmax: np.ndarray
    abs_charge: np.ndarray
    #: identity of this moment set, for moment-derived lazy caches
    token: int = field(default_factory=_MOMENT_TOKENS.__next__)


def _upward_pass_centers(tree: Octree) -> np.ndarray:
    """Expansion centers: the geometric cell centers (PEPC convention)."""
    return tree.node_center.copy()


def compute_vortex_moments(
    tree: Octree, charges: np.ndarray
) -> VortexMoments:
    """Moments for vector charges given in *original* particle order."""
    charges = check_array(
        "charges", charges, shape=(tree.n_particles, 3), dtype=np.float64
    )
    alpha = charges[tree.order]  # sorted order
    pos = tree.positions
    center = _upward_pass_centers(tree)
    n_nodes = tree.n_nodes

    m0 = np.zeros((n_nodes, 3))
    m1 = np.zeros((n_nodes, 3, 3))
    m2 = np.zeros((n_nodes, 3, 3, 3))
    bmax = np.zeros(n_nodes)
    abs_charge = np.zeros(n_nodes)

    # ---- leaves: direct vectorised segment sums ----------------------
    leaves = tree.leaves()
    starts, ends = tree.node_start[leaves], tree.node_end[leaves]
    # raw sums about the origin
    s0 = _segment_sum(alpha, starts, ends)  # (L, 3)
    s1 = _segment_sum(
        np.einsum("ni,nj->nij", alpha, pos), starts, ends
    )  # (L, 3, 3)
    s2 = _segment_sum(
        np.einsum("ni,nj,nk->nijk", alpha, pos, pos), starts, ends
    )  # (L, 3, 3, 3)
    c = center[leaves]  # (L, 3)
    m0[leaves] = s0
    # shift to leaf centers: M1_ij = s1_ij - s0_i c_j
    m1[leaves] = s1 - np.einsum("li,lj->lij", s0, c)
    # M2_ijk = 1/2 (s2 - s1_ij c_k - s1_ik c_j + s0_i c_j c_k)
    m2[leaves] = 0.5 * (
        s2
        - np.einsum("lij,lk->lijk", s1, c)
        - np.einsum("lik,lj->lijk", s1, c)
        + np.einsum("li,lj,lk->lijk", s0, c, c)
    )
    abs_charge[leaves] = _segment_sum(
        np.linalg.norm(alpha, axis=1), starts, ends
    )
    # leaf bmax: farthest particle from the leaf center
    leaf_of_slot = np.zeros(tree.n_particles, dtype=np.int64)
    leaf_ids = np.repeat(np.arange(leaves.size), (ends - starts))
    slot_index = np.concatenate(
        [np.arange(s, e) for s, e in zip(starts, ends)]
    ) if leaves.size else np.empty(0, dtype=np.int64)
    leaf_of_slot[slot_index] = leaf_ids
    dist = np.linalg.norm(pos - center[leaves][leaf_of_slot], axis=1)
    np.maximum.at(bmax, leaves[leaf_of_slot], dist)

    # ---- internal nodes: translate children upward, deepest first ----
    for lvl in range(tree.n_levels - 2, -1, -1):
        lo, hi = tree.level_offsets[lvl], tree.level_offsets[lvl + 1]
        nodes = np.arange(lo, hi)
        internal = nodes[tree.node_first_child[nodes] >= 0]
        if internal.size == 0:
            continue
        for node in internal:
            kids = tree.children(node)
            s = center[kids] - center[node]  # (K, 3)
            k0, k1, k2 = m0[kids], m1[kids], m2[kids]
            m0[node] = k0.sum(axis=0)
            m1[node] = (k1 + np.einsum("ki,kj->kij", k0, s)).sum(axis=0)
            m2[node] = (
                k2
                + 0.5 * np.einsum("kij,kl->kijl", k1, s)
                + 0.5 * np.einsum("kil,kj->kijl", k1, s)
                + 0.5 * np.einsum("ki,kj,kl->kijl", k0, s, s)
            ).sum(axis=0)
            abs_charge[node] = abs_charge[kids].sum()
            bmax[node] = np.max(
                bmax[kids] + np.linalg.norm(s, axis=1)
            )
    return VortexMoments(
        center=center, m0=m0, m1=m1, m2=m2, bmax=bmax, abs_charge=abs_charge
    )


def compute_coulomb_moments(
    tree: Octree, charges: np.ndarray
) -> CoulombMoments:
    """Moments for scalar charges given in *original* particle order."""
    charges = check_array(
        "charges", charges, shape=(tree.n_particles,), dtype=np.float64
    )
    q = charges[tree.order]
    pos = tree.positions
    center = _upward_pass_centers(tree)
    n_nodes = tree.n_nodes

    m0 = np.zeros(n_nodes)
    m1 = np.zeros((n_nodes, 3))
    m2 = np.zeros((n_nodes, 3, 3))
    bmax = np.zeros(n_nodes)
    abs_charge = np.zeros(n_nodes)

    leaves = tree.leaves()
    starts, ends = tree.node_start[leaves], tree.node_end[leaves]
    s0 = _segment_sum(q, starts, ends)
    s1 = _segment_sum(q[:, None] * pos, starts, ends)
    s2 = _segment_sum(
        np.einsum("n,nj,nk->njk", q, pos, pos), starts, ends
    )
    c = center[leaves]
    m0[leaves] = s0
    m1[leaves] = s1 - s0[:, None] * c
    m2[leaves] = 0.5 * (
        s2
        - np.einsum("lj,lk->ljk", s1, c)
        - np.einsum("lk,lj->ljk", s1, c)
        + np.einsum("l,lj,lk->ljk", s0, c, c)
    )
    abs_charge[leaves] = _segment_sum(np.abs(q), starts, ends)
    leaf_of_slot = np.zeros(tree.n_particles, dtype=np.int64)
    if leaves.size:
        leaf_ids = np.repeat(np.arange(leaves.size), (ends - starts))
        slot_index = np.concatenate(
            [np.arange(s, e) for s, e in zip(starts, ends)]
        )
        leaf_of_slot[slot_index] = leaf_ids
        dist = np.linalg.norm(pos - center[leaves][leaf_of_slot], axis=1)
        np.maximum.at(bmax, leaves[leaf_of_slot], dist)

    for lvl in range(tree.n_levels - 2, -1, -1):
        lo, hi = tree.level_offsets[lvl], tree.level_offsets[lvl + 1]
        nodes = np.arange(lo, hi)
        internal = nodes[tree.node_first_child[nodes] >= 0]
        for node in internal:
            kids = tree.children(node)
            s = center[kids] - center[node]
            k0, k1, k2 = m0[kids], m1[kids], m2[kids]
            m0[node] = k0.sum()
            m1[node] = (k1 + k0[:, None] * s).sum(axis=0)
            m2[node] = (
                k2
                + 0.5 * np.einsum("kj,kl->kjl", k1, s)
                + 0.5 * np.einsum("kl,kj->kjl", k1, s)
                + 0.5 * np.einsum("k,kj,kl->kjl", k0, s, s)
            ).sum(axis=0)
            abs_charge[node] = abs_charge[kids].sum()
            bmax[node] = np.max(bmax[kids] + np.linalg.norm(s, axis=1))
    return CoulombMoments(
        center=center, m0=m0, m1=m1, m2=m2, bmax=bmax, abs_charge=abs_charge
    )
