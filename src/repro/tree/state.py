"""Reusable tree state: build + moments + traversal behind one cache.

PFASST calls the tree code over and over: M quadrature nodes x K sweeps x
iterations, on two levels that share the *same particle set* and differ
only in ``theta``.  Rebuilding the octree, the multipole moments and the
interaction lists from scratch on every RHS call therefore repeats a large
amount of state-identical work:

* repeated evaluations at the same ``(positions, charges)`` (the sweep's
  node-0 re-evaluations, the FAS restriction re-evaluating the coarse RHS
  at the states the fine level just visited) can reuse *everything* up to
  the final far/near summation;
* the paper's fine/coarse evaluator pair (``theta = 0.3`` / ``0.6``) can
  share one tree and one moment pass, re-running only the
  ``theta``-dependent traversal.

:class:`TreeStateCache` realises both.  States are keyed by a cheap
content fingerprint (BLAKE2 over the raw array bytes) of ``positions``
plus the build parameters, so in-place mutation of a caller array simply
produces a miss — there is no way to observe a stale tree.  Within a
state, moments are keyed by the charge-array fingerprint and traversals by
``(theta, mac_variant)``.  Hit/miss counters per stage are kept in
:class:`CacheStats`; the evaluators surface per-call flags in
``TreeStats`` and only time the ``tree_build`` / ``moments`` / ``traverse``
phases on misses, so a :class:`~repro.obs.timing.TimingRegistry` report
directly shows the work saved.  When a global metrics registry is active
(:func:`repro.obs.use_metrics`), every hit/miss also increments a
``tree.cache.<stage>.<hits|misses>`` counter there.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.tree.build import Octree, build_octree
from repro.tree.multipole import (
    CoulombMoments,
    VortexMoments,
    compute_coulomb_moments,
    compute_vortex_moments,
)
from repro.obs.metrics import get_metrics
from repro.obs.timing import TimingRegistry
from repro.tree.traversal import InteractionLists, dual_traversal

__all__ = ["array_fingerprint", "CacheStats", "TreeState", "TreeStateCache"]


def array_fingerprint(array: np.ndarray) -> bytes:
    """Content fingerprint of an array (shape, dtype and raw bytes)."""
    array = np.ascontiguousarray(array)
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(array.shape).encode())
    h.update(array.dtype.str.encode())
    h.update(array.view(np.uint8).reshape(-1).data)
    return h.digest()


@dataclass
class CacheStats:
    """Cumulative hit/miss counters, one pair per pipeline stage."""

    build_hits: int = 0
    build_misses: int = 0
    moment_hits: int = 0
    moment_misses: int = 0
    traversal_hits: int = 0
    traversal_misses: int = 0

    def count(self, stage: str, hit: bool) -> None:
        """Increment one stage's hit or miss counter (and the active
        metrics registry's ``tree.cache.<stage>.<hits|misses>``)."""
        attr = f"{stage}_{'hits' if hit else 'misses'}"
        setattr(self, attr, getattr(self, attr) + 1)
        m = get_metrics()
        if m.enabled:
            m.counter(
                f"tree.cache.{stage}.{'hits' if hit else 'misses'}"
            ).inc()

    def as_dict(self) -> Dict[str, int]:
        return {
            "build_hits": self.build_hits,
            "build_misses": self.build_misses,
            "moment_hits": self.moment_hits,
            "moment_misses": self.moment_misses,
            "traversal_hits": self.traversal_hits,
            "traversal_misses": self.traversal_misses,
        }


class TreeState:
    """One built octree plus its derived, lazily-cached products.

    Holds the tree itself, multipole moments per charge set (vortex and
    Coulomb kinds side by side) and interaction lists per
    ``(theta, mac_variant)``.  Created and owned by
    :class:`TreeStateCache`; evaluators never build trees directly.
    """

    def __init__(self, tree: Octree, stats: CacheStats) -> None:
        self.tree = tree
        self._stats = stats
        self._vortex_moments: "OrderedDict[bytes, VortexMoments]" = OrderedDict()
        self._coulomb_moments: "OrderedDict[bytes, CoulombMoments]" = OrderedDict()
        self._traversals: Dict[Tuple[float, str], InteractionLists] = {}
        #: per-traversal engine layouts, attached by the batched engine
        #: (keyed like ``_traversals``; opaque to this module)
        self.engine_layouts: Dict[Tuple[float, str], object] = {}
        self._groups: Optional[np.ndarray] = None

    # A handful of charge sets coexist per state (e.g. gradient on/off
    # callers, multirate freeze snapshots); keep the map tiny.
    _MOMENT_SLOTS = 4

    @property
    def groups(self) -> np.ndarray:
        """Leaf node ids (traversal target groups), computed once."""
        if self._groups is None:
            self._groups = self.tree.leaves()
        return self._groups

    def vortex_moments(
        self, charges: np.ndarray, phases: Optional[TimingRegistry] = None
    ) -> Tuple[VortexMoments, bool]:
        """Moments for vector charges; returns ``(moments, was_cached)``."""
        key = array_fingerprint(charges)
        hit = self._vortex_moments.get(key)
        if hit is not None:
            self._stats.count("moment", hit=True)
            self._vortex_moments.move_to_end(key)
            return hit, True
        self._stats.count("moment", hit=False)
        if phases is not None:
            with phases.phase("moments"):
                moments = compute_vortex_moments(self.tree, charges)
        else:
            moments = compute_vortex_moments(self.tree, charges)
        self._vortex_moments[key] = moments
        while len(self._vortex_moments) > self._MOMENT_SLOTS:
            self._vortex_moments.popitem(last=False)
        return moments, False

    def coulomb_moments(
        self, charges: np.ndarray, phases: Optional[TimingRegistry] = None
    ) -> Tuple[CoulombMoments, bool]:
        """Moments for scalar charges; returns ``(moments, was_cached)``."""
        key = array_fingerprint(charges)
        hit = self._coulomb_moments.get(key)
        if hit is not None:
            self._stats.count("moment", hit=True)
            self._coulomb_moments.move_to_end(key)
            return hit, True
        self._stats.count("moment", hit=False)
        if phases is not None:
            with phases.phase("moments"):
                moments = compute_coulomb_moments(self.tree, charges)
        else:
            moments = compute_coulomb_moments(self.tree, charges)
        self._coulomb_moments[key] = moments
        while len(self._coulomb_moments) > self._MOMENT_SLOTS:
            self._coulomb_moments.popitem(last=False)
        return moments, False

    def traversal(
        self,
        theta: float,
        variant: str,
        node_bmax: np.ndarray,
        phases: Optional[TimingRegistry] = None,
    ) -> Tuple[InteractionLists, bool]:
        """Interaction lists for ``(theta, variant)``; cached per state.

        ``node_bmax`` comes from the moment pass but is purely geometric
        (distances of particles to cell centers), hence identical for
        every charge set over the same tree — safe to key the traversal
        by ``(theta, variant)`` alone.
        """
        key = (float(theta), str(variant))
        hit = self._traversals.get(key)
        if hit is not None:
            self._stats.count("traversal", hit=True)
            return hit, True
        self._stats.count("traversal", hit=False)
        if phases is not None:
            with phases.phase("traverse"):
                lists = dual_traversal(
                    self.tree, theta, node_bmax=node_bmax, variant=variant
                )
        else:
            lists = dual_traversal(
                self.tree, theta, node_bmax=node_bmax, variant=variant
            )
        self._traversals[key] = lists
        return lists, False


class TreeStateCache:
    """LRU cache of :class:`TreeState` keyed by particle positions.

    One cache instance may be *shared* by several evaluators — the paper's
    fine/coarse pair shares one tree and one moment pass and re-runs only
    its own traversal.  ``maxsize`` bounds the number of distinct particle
    configurations kept alive (PFASST touches a handful per time slice).
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.stats = CacheStats()
        self._states: "OrderedDict[Tuple[bytes, int], TreeState]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._states)

    def clear(self) -> None:
        self._states.clear()

    def state(
        self,
        positions: np.ndarray,
        leaf_size: int,
        phases: Optional[TimingRegistry] = None,
    ) -> Tuple[TreeState, bool]:
        """Tree state for a particle configuration; ``(state, was_cached)``."""
        key = (array_fingerprint(positions), int(leaf_size))
        hit = self._states.get(key)
        if hit is not None:
            self.stats.count("build", hit=True)
            self._states.move_to_end(key)
            return hit, True
        self.stats.count("build", hit=False)
        if phases is not None:
            with phases.phase("tree_build"):
                tree = build_octree(positions, leaf_size=leaf_size)
        else:
            tree = build_octree(positions, leaf_size=leaf_size)
        state = TreeState(tree, self.stats)
        self._states[key] = state
        while len(self._states) > self.maxsize:
            self._states.popitem(last=False)
        return state, False
