"""Vectorised group-collective tree traversal.

PEPC traverses the tree once per particle; in NumPy we instead traverse
once per *target group* (a tree leaf), testing the MAC against the group's
bounding sphere so the decision is valid for all of its particles.  All
groups advance through the tree simultaneously: the frontier is a flat
array of (group, node) candidate pairs, and each wave performs one
vectorised MAC test plus one vectorised child expansion.  Python-level
iteration is bounded by the tree depth, not by N.

Outputs are interaction lists:

* ``far_pairs``  — (group, node) pairs whose multipole expansion is used;
* ``near_pairs`` — (group, leaf) pairs evaluated by direct summation
  (always includes the group's own leaf).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.tree.build import Octree
from repro.tree.mac import MACVariant, mac_accept_sq

__all__ = ["InteractionLists", "dual_traversal"]


@dataclass
class InteractionLists:
    """Result of a dual traversal."""

    #: node ids of the target groups (tree leaves)
    groups: np.ndarray
    #: (F,) group indices and (F,) node ids of far (multipole) interactions
    far_group: np.ndarray
    far_node: np.ndarray
    #: (Nn,) group indices and (Nn,) leaf node ids of near interactions
    near_group: np.ndarray
    near_node: np.ndarray
    #: MAC tests performed (a work/traffic proxy for the performance model)
    mac_tests: int

    @property
    def n_groups(self) -> int:
        return self.groups.shape[0]

    def far_interaction_count(self, tree: Octree) -> int:
        """Total number of particle-cluster interactions."""
        group_sizes = tree.node_count(self.groups[self.far_group])
        return int(group_sizes.sum())

    def near_interaction_count(self, tree: Octree) -> int:
        """Total number of particle-particle near-field interactions."""
        t = tree.node_count(self.groups[self.near_group])
        s = tree.node_count(self.near_node)
        return int(np.dot(t, s))


def _expand_children(
    tree: Octree, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Children of each node, as (repeat_index, child_id) arrays."""
    first = tree.node_first_child[nodes]
    count = tree.node_n_children[nodes]
    total = int(count.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    rep = np.repeat(np.arange(nodes.shape[0]), count)
    offsets = np.concatenate([[0], np.cumsum(count)])[:-1]
    child = np.repeat(first, count) + (np.arange(total) - np.repeat(offsets, count))
    return rep, child


def dual_traversal(
    tree: Octree,
    theta: float,
    node_bmax: Optional[np.ndarray] = None,
    group_radius: Optional[np.ndarray] = None,
    variant: MACVariant = "bh",
) -> InteractionLists:
    """Build interaction lists for all tree leaves as target groups.

    Parameters
    ----------
    tree :
        The source octree.
    theta :
        Multipole acceptance parameter (paper's ``theta``); 0 reproduces
        direct summation.
    node_bmax :
        Cluster radii per node (from the moment pass).  Required for the
        ``bmax`` MAC variant; also used as the default group radii.
    group_radius :
        Bounding radii of the target groups about their cell centers;
        defaults to ``node_bmax`` of the leaves, else half the cell
        diagonal.
    variant :
        MAC flavour (``"bh"`` classical, ``"bmax"`` Salmon-Warren style).
    """
    groups = tree.leaves()
    n_groups = groups.shape[0]
    if variant == "bmax" and node_bmax is None:
        raise ValueError("bmax MAC needs node_bmax from the moment pass")
    if node_bmax is None:
        # conservative fallback: half cell diagonal
        node_bmax = 0.5 * np.sqrt(3.0) * tree.node_size
    if group_radius is None:
        group_radius = node_bmax[groups]
    group_center = tree.node_center[groups]

    far_g: list[np.ndarray] = []
    far_n: list[np.ndarray] = []
    near_g: list[np.ndarray] = []
    near_n: list[np.ndarray] = []
    mac_tests = 0

    # frontier of candidate (group, node) pairs, starting at the root
    fg = np.arange(n_groups, dtype=np.int64)
    fn = np.zeros(n_groups, dtype=np.int64)
    while fg.size:
        mac_tests += fg.size
        diff = group_center[fg] - tree.node_center[fn]
        dist_sq = np.einsum("ij,ij->i", diff, diff)
        accept = mac_accept_sq(
            theta,
            tree.node_size[fn],
            node_bmax[fn],
            dist_sq,
            group_radius[fg],
            variant,
        )
        if np.any(accept):
            far_g.append(fg[accept])
            far_n.append(fn[accept])
        rest_g, rest_n = fg[~accept], fn[~accept]
        leaf = tree.node_first_child[rest_n] < 0
        if np.any(leaf):
            near_g.append(rest_g[leaf])
            near_n.append(rest_n[leaf])
        open_g, open_n = rest_g[~leaf], rest_n[~leaf]
        rep, child = _expand_children(tree, open_n)
        fg, fn = open_g[rep], child

    def _cat(parts: list[np.ndarray]) -> np.ndarray:
        return (
            np.concatenate(parts)
            if parts
            else np.empty(0, dtype=np.int64)
        )

    return InteractionLists(
        groups=groups,
        far_group=_cat(far_g),
        far_node=_cat(far_n),
        near_group=_cat(near_g),
        near_node=_cat(near_n),
        mac_tests=mac_tests,
    )
