"""Batched interaction-list evaluation engine.

The seed evaluators walked the interaction lists with one Python-loop
iteration per target group (``O(N / leaf_size)`` iterations, each issuing
dozens of small NumPy calls and a per-leaf ``np.concatenate``).  This
module evaluates whole *batches of groups* at once, padded to rectangular
blocks so the inner loops are dense matrix products:

* **near** (vortex): in the production regime (smooth kernel, leaves a
  few core sizes across) each batch builds per-source feature rows
  ``[alpha | s x alpha | alpha (x) s | (s x alpha) (x) s]``, computes
  ``r^2`` from the GEMM identity ``|t|^2 + |s|^2 - 2 t.s``, the two
  radial factors straight from ``r^2``
  (:meth:`~repro.vortex.kernels.SmoothingKernel.f_g_from_r2`), and
  contracts them against the feature block with two GEMMs; a short
  per-target epilogue reassembles velocity and gradient from the 6/24
  contracted columns.  Outside the expansion gate (theta = 0 stress
  shapes, singular kernels) a fully explicit ``r = t - s`` path keeps
  exact-zero detection and reference-level rounding.
* **far** (vortex): the multipole expansion is factored over the
  *cluster-frame* monomial basis (:mod:`repro.tree.localbasis`): every
  unique cluster node gets one weight matrix mapping the D-weighted
  monomials of ``r = target - center`` straight to the 3 velocity + 9
  gradient components.  The far pass walks unique nodes (regrouped by
  the layout into a node -> target-slots CSR), evaluates the radial
  chain and an incremental monomial table per pair, runs one batched
  GEMM against the cached weights, and scatters with one
  ``np.bincount`` per output component.  Per-pair work is independent
  of how many groups share a cluster, and all per-cluster tensor
  algebra happens once per traversal, not once per batch.
* **Coulomb** far/near keep the flat chunked pair streams over the
  pairwise kernels (:func:`~repro.tree.evaluate.evaluate_coulomb_far_pairs`,
  :func:`~repro.nbody.direct.coulomb_pairs`) — the scalar-charge path
  has an order of magnitude less per-pair state, so gather-per-pair is
  already cheap.

Batches are packed greedily under a temporary-memory budget, groups
sorted by size so padding stays tight; a batch always contains at least
one group, so any positive budget makes progress.  Scatter back onto the
targets uses plain fancy indexing — leaves tile disjoint slot ranges, so
target rows within a batch are unique.

Interaction lists are laid out once per traversal by
:func:`segment_layout`: a single ``np.bincount`` + ``cumsum`` gives the
per-group segment table shared by the far and near phases (replacing the
seed's two stable argsorts + four ``searchsorted`` calls; a sort is only
performed when the traversal output is not already group-ordered).

**Backends.** Each pass takes an optional kernel backend
(:mod:`repro.backends`) selecting the execution strategy and array
residency: the batch/chunk partitions built here are *write-disjoint*
(each owns the target rows or slot range it scatters into), which is
the invariant that lets the ``threaded`` backend run them on a thread
pool bitwise-identically and the ``cupy`` backend move the vortex
near-field pass — the ~90% cost center — onto the GPU with transfers
only at the pass boundary.  ``backend=None`` resolves through
``REPRO_BACKEND`` and defaults to the serial NumPy reference.

**Process safety.** The batched kernels are safe to run inside worker
processes of the executor backend (:mod:`repro.parallel.executor`):
module state is limited to immutable constants (``_INV_FOUR_PI``, the
budget defaults), inputs are only read (positions/charges may arrive as
read-only shared-memory views), and all mutation targets are the
caller-allocated ``vel`` / ``grad`` output buffers.  Callers that cross a
process boundary must therefore allocate *fresh, writable* outputs on the
worker side — :func:`check_output_buffers` validates the contract
(float64, C-contiguous, writable, correctly shaped) before the GEMM
passes touch them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.backends import KernelBackend, get_backend
from repro.nbody.direct import coulomb_pairs
from repro.tree.build import Octree
from repro.tree.evaluate import (
    _cross,
    _cross_matrix_add,
    _eps_add,
    evaluate_coulomb_far_pairs,
)
from repro.tree.localbasis import (
    BLOCK_COL,
    BLOCK_END,
    BLOCK_LO,
    DEG_START,
    monomial_rows,
    node_far_weights,
)
from repro.tree.multipole import CoulombMoments, VortexMoments
from repro.tree.profiles import radial_chain
from repro.tree.traversal import InteractionLists
from repro.vortex.kernels import SmoothingKernel

__all__ = [
    "SegmentLayout",
    "segment_layout",
    "TraversalLayout",
    "build_traversal_layout",
    "batched_far_vortex",
    "batched_near_vortex",
    "batched_far_coulomb",
    "batched_near_coulomb",
    "check_output_buffers",
]

_INV_FOUR_PI = 1.0 / (4.0 * np.pi)


def check_output_buffers(
    vel: np.ndarray,
    grad: Optional[np.ndarray],
    n: int,
    gradient: bool,
) -> None:
    """Validate accumulation buffers before the batched far/near passes.

    The engine accumulates in place, so the buffers must be fresh float64
    C-contiguous *writable* arrays of the full particle count.  Read-only
    views (e.g. shared-memory inputs mapped into an executor worker) and
    stale-shaped reuse are rejected here, with a clear message, instead
    of failing deep inside a GEMM scatter.
    """
    def _check(name: str, a: np.ndarray, shape: Tuple[int, ...]) -> None:
        if a.shape != shape:
            raise ValueError(
                f"{name} buffer has shape {a.shape}, expected {shape}"
            )
        if a.dtype != np.float64:
            raise TypeError(
                f"{name} buffer has dtype {a.dtype}, expected float64"
            )
        if not a.flags.c_contiguous:
            raise ValueError(f"{name} buffer must be C-contiguous")
        if not a.flags.writeable:
            raise ValueError(
                f"{name} buffer is read-only; the engine accumulates in "
                "place — allocate a fresh array on this side of any "
                "process boundary"
            )

    _check("velocity", vel, (n, 3))
    if gradient:
        if grad is None:
            raise ValueError("gradient requested but grad buffer is None")
        _check("gradient", grad, (n, 3, 3))

#: default temporary-memory budget per evaluation batch/chunk
DEFAULT_BUDGET_BYTES = 64 * 2**20
#: tighter defaults for the GEMM passes — blocks that stay cache-resident
#: make the many short elementwise sweeps (radial factors, monomials)
#: run at cache bandwidth instead of streaming from memory.  Values from
#: a budget sweep on the N=8192 sheet benchmark (single-core BLAS).
NEAR_GEMM_BUDGET_BYTES = 3 * 2**20
FAR_BUDGET_BYTES = 16 * 2**20

# approximate float64 temporaries, used only to size batches — order of
# magnitude accuracy suffices.  "elem" is per padded (target, source)
# pair; the near "pair" bytes are per padded source lane.
_NEAR_ELEM_BYTES = {True: 112, False: 56}
_NEAR_GEMM_ELEM_BYTES = {True: 64, False: 40}
_NEAR_PAIR_BYTES = {True: 264, False: 96}
#: per padded (target, cluster-node) far pair: monomial + Ycat rows,
#: radial chain, gather/output blocks
_FAR_PAIR_BYTES = 904
_FAR_BYTES_PER_PAIR = {True: 1200, False: 600}  # flat Coulomb path
_NEAR_BYTES_PER_PAIR = {True: 480, False: 240}

#: cached far-weight sets per layout — one per live moment set times
#: (order, gradient) combination; PFASST alternates a handful of charge
#: sets over the same positions, so keep enough slots to avoid thrash
_FAR_WEIGHT_SLOTS = 16

#: near product-expansion gate: the GEMM distance/feature expansion is
#: used only when every *target* sits within this many core sizes of its
#: group center.  The expansion noise of ``|t|^2 + |s|^2 - 2 t.s`` and
#: of the split cross products is ~(|t| / sigma)^2 ulps relative to the
#: kernel scale (distant sources self-limit: the kernel decays faster
#: than the expanded magnitudes grow), so small-leaf production trees
#: (|t| ~ 2 sigma) stay at reference accuracy while coarse-leaf stress
#: shapes fall back to the explicit path.
_NEAR_EXPAND_SIGMA = 4.0


def _cumsum0(a: np.ndarray) -> np.ndarray:
    """Exclusive-prefix-sum with a leading 0 (length ``a.size + 1``)."""
    out = np.empty(a.size + 1, dtype=np.int64)
    out[0] = 0
    np.cumsum(a, out=out[1:])
    return out


def _segment_arange(counts: np.ndarray, total: int) -> np.ndarray:
    """Concatenation of ``arange(c)`` for every ``c`` in ``counts``."""
    starts = _cumsum0(counts)[:-1]
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


@dataclass
class SegmentLayout:
    """Interaction-list pairs grouped by target group (CSR layout)."""

    #: pair node ids, ordered by group index
    node: np.ndarray
    #: (n_groups,) pairs per group
    counts: np.ndarray
    #: (n_groups + 1,) exclusive prefix offsets into ``node``
    starts: np.ndarray


def segment_layout(
    group: np.ndarray, node: np.ndarray, n_groups: int
) -> SegmentLayout:
    """Group the ``(group, node)`` pair list into per-group segments.

    One ``np.bincount`` + ``cumsum`` replaces the seed's argsort +
    ``searchsorted`` bookkeeping; the stable argsort only runs when the
    pairs are not already group-ordered (the traversal emits each wave
    group-ordered, so short lists frequently need no sort at all).
    """
    counts = np.bincount(group, minlength=n_groups).astype(np.int64)
    starts = _cumsum0(counts)
    if group.size > 1 and np.any(np.diff(group) < 0):
        node = node[np.argsort(group, kind="stable")]
    return SegmentLayout(node=node, counts=counts, starts=starts)


@dataclass
class TraversalLayout:
    """Everything the batched engine needs, precomputed per traversal.

    Group-indexed arrays follow the order of ``lists.groups``; per-slot
    arrays are indexed by *sorted particle slot* (the Morton order the
    tree stores) and serve the flat chunked Coulomb path, whose ``cum``
    prefix sums cut the pair streams into chunks.
    """

    far: SegmentLayout
    near: SegmentLayout
    #: per-group target slot range and geometric center
    group_start: np.ndarray
    group_count: np.ndarray
    group_center: np.ndarray
    #: concatenated near source slots, one contiguous block per group
    src_concat: np.ndarray
    #: per-group range into ``src_concat``
    src_start: np.ndarray
    src_count: np.ndarray
    #: far pairs per slot / segment base offset per slot / prefix sum
    far_count: np.ndarray
    far_base: np.ndarray
    far_cum: np.ndarray
    near_count: np.ndarray
    near_base: np.ndarray
    near_cum: np.ndarray
    #: unique far cluster nodes (ascending) with their pair CSR: node
    #: ``far_nodes_u[k]`` interacts with targets ``far_pair_targets[
    #: far_node_pair_start[k]:far_node_pair_start[k + 1]]`` (sorted slots)
    far_nodes_u: np.ndarray = field(default=None)
    far_node_pair_start: np.ndarray = field(default=None)
    far_pair_targets: np.ndarray = field(default=None)
    #: max squared distance of any target to its group center — drives
    #: the near product-expansion gate (see ``_NEAR_EXPAND_SIGMA``)
    group_radius2: float = 0.0
    #: cached cluster-frame far weights, keyed by ``(moments.token,
    #: order, gradient)``.  The weights are built from moment *values*,
    #: while the layout itself is purely geometric and outlives any one
    #: charge set (the TreeState caches it per ``(theta, variant)``) —
    #: so the moment token MUST be part of the key, or a charge change
    #: over the same particle positions would be served weights of the
    #: previous charge set.  Insertion-ordered; oldest entries are
    #: evicted beyond ``_FAR_WEIGHT_SLOTS``.
    far_weights: Dict[Tuple[int, int, bool], np.ndarray] = field(
        default_factory=dict
    )

    @property
    def far_pairs(self) -> int:
        return int(self.far_cum[-1])

    @property
    def near_pairs(self) -> int:
        return int(self.near_cum[-1])


def _group_of_slot(tree: Octree, groups: np.ndarray) -> np.ndarray:
    """Group index of every sorted particle slot (leaves tile the slots)."""
    starts = tree.node_start[groups]
    sizes = tree.node_end[groups] - starts
    order = np.argsort(starts)
    return np.repeat(np.arange(groups.size, dtype=np.int64)[order],
                     sizes[order])


def build_traversal_layout(
    tree: Octree, lists: InteractionLists
) -> TraversalLayout:
    """Expand interaction lists into the per-group and per-slot tables."""
    n_groups = lists.n_groups
    far = segment_layout(lists.far_group, lists.far_node, n_groups)
    near = segment_layout(lists.near_group, lists.near_node, n_groups)
    gi = _group_of_slot(tree, lists.groups)

    group_start = tree.node_start[lists.groups]
    group_count = tree.node_end[lists.groups] - group_start
    group_center = tree.node_center[lists.groups]

    far_count = far.counts[gi]
    far_base = far.starts[:-1][gi]
    far_cum = _cumsum0(far_count)

    # near: concatenate every group's source leaf ranges once
    leaf_sizes = tree.node_count(near.node)
    total_src = int(leaf_sizes.sum())
    src_concat = (
        np.repeat(tree.node_start[near.node], leaf_sizes)
        + _segment_arange(leaf_sizes, total_src)
    )
    cum_sizes = _cumsum0(leaf_sizes)
    sources_per_group = cum_sizes[near.starts[1:]] - cum_sizes[near.starts[:-1]]
    group_src_offset = _cumsum0(sources_per_group)
    near_count = sources_per_group[gi]
    near_base = group_src_offset[:-1][gi]
    near_cum = _cumsum0(near_count)

    # far pairs regrouped by cluster node: the cluster-frame far driver
    # walks unique nodes, each paired with the concatenated target slots
    # of every group that accepted it
    n_far_entries = far.node.size
    if n_far_entries:
        entry_group = np.repeat(
            np.arange(n_groups, dtype=np.int64), far.counts
        )
        order_e = np.argsort(far.node, kind="stable")
        nodes_sorted = far.node[order_e]
        gsort = entry_group[order_e]
        bounds = np.concatenate(
            ([0], np.flatnonzero(np.diff(nodes_sorted)) + 1, [n_far_entries])
        )
        far_nodes_u = nodes_sorted[bounds[:-1]]
        ecount = group_count[gsort]
        pair_cum = _cumsum0(ecount)
        far_node_pair_start = pair_cum[bounds]
        far_pair_targets = np.repeat(group_start[gsort], ecount)
        far_pair_targets += _segment_arange(ecount, int(pair_cum[-1]))
    else:
        far_nodes_u = np.empty(0, np.int64)
        far_node_pair_start = np.zeros(1, np.int64)
        far_pair_targets = np.empty(0, np.int64)

    if gi.size:
        d = tree.positions - group_center[gi]
        group_radius2 = float(np.einsum("ij,ij->i", d, d).max())
    else:
        group_radius2 = 0.0

    return TraversalLayout(
        far=far,
        near=near,
        group_start=group_start,
        group_count=group_count,
        group_center=group_center,
        src_concat=src_concat,
        src_start=group_src_offset[:-1],
        src_count=sources_per_group,
        far_count=far_count,
        far_base=far_base,
        far_cum=far_cum,
        near_count=near_count,
        near_base=near_base,
        near_cum=near_cum,
        far_nodes_u=far_nodes_u,
        far_node_pair_start=far_node_pair_start,
        far_pair_targets=far_pair_targets,
        group_radius2=group_radius2,
    )


# ---------------------------------------------------------------------------
# batching helpers
# ---------------------------------------------------------------------------

def _pack_groups(
    idx: np.ndarray,
    tcount: np.ndarray,
    kcount: np.ndarray,
    elem_bytes: int,
    pair_bytes: int,
    budget: int,
) -> List[np.ndarray]:
    """Greedy group batches under ``budget`` temporary bytes.

    Cost model: ``B * Cmax * Kmax * elem_bytes`` padded pair temporaries
    plus ``B * Kmax * pair_bytes`` per-lane state.  ``idx`` should arrive
    sorted by ``kcount`` descending so padding stays tight.  Every batch
    holds at least one group, so progress is made for any budget.
    """
    batches: List[np.ndarray] = []
    tc, kc = tcount[idx], kcount[idx]
    i, n = 0, idx.size
    while i < n:
        cmax, kmax = int(tc[i]), int(kc[i])
        j = i + 1
        while j < n:
            c = max(cmax, int(tc[j]))
            k = max(kmax, int(kc[j]))
            nb = j + 1 - i
            if nb * k * (c * elem_bytes + pair_bytes) > budget:
                break
            cmax, kmax = c, k
            j += 1
        batches.append(idx[i:j])
        i = j
    return batches


def _padded_lanes(
    start: np.ndarray, count: np.ndarray, width: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Padded per-group index block (B, width) plus its validity mask.

    Padding lanes repeat the group's last element so every gathered
    index is in range; callers mask their contributions.
    """
    lane = np.minimum(np.arange(width), count[:, None] - 1)
    return start[:, None] + lane, np.arange(width) < count[:, None]


def _slot_chunks(
    cum: np.ndarray, chunk_pairs: int
) -> Iterator[Tuple[int, int]]:
    """Cut slots into ranges of roughly ``chunk_pairs`` pairs each.

    A single slot whose pair count exceeds the budget still forms its own
    chunk (progress is always made).
    """
    n = cum.size - 1
    a = 0
    while a < n:
        b = int(np.searchsorted(cum, cum[a] + max(chunk_pairs, 1), "left"))
        b = min(max(b, a + 1), n)
        yield a, b
        a = b


def _expand(
    count: np.ndarray, base: np.ndarray, a: int, b: int
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Pair expansion for slots ``[a, b)``.

    Returns ``(reps, flat_index, total)`` where ``reps`` is the slot
    offset (relative to ``a``) of each pair — non-decreasing, so segment
    sums per target are contiguous — and ``flat_index`` points into the
    layout's segment array.
    """
    c = count[a:b]
    total = int(c.sum())
    if total == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64), 0
    reps = np.repeat(np.arange(b - a, dtype=np.int64), c)
    within = _segment_arange(c, total)
    return reps, base[a:b][reps] + within, total


def _scatter_add(
    out: np.ndarray, a: int, reps: np.ndarray, contrib: np.ndarray
) -> None:
    """Segment-sum per-pair contributions onto ``out`` (sorted order)."""
    seg = np.concatenate(
        ([0], np.flatnonzero(np.diff(reps)) + 1)
    )
    out[a + reps[seg]] += np.add.reduceat(contrib, seg, axis=0)


def _chunk_size(budget_bytes: Optional[int], bytes_per_pair: int) -> int:
    budget = DEFAULT_BUDGET_BYTES if budget_bytes is None else budget_bytes
    return max(4096, budget // bytes_per_pair)


# ---------------------------------------------------------------------------
# vortex (vector charge) drivers
# ---------------------------------------------------------------------------

def batched_far_vortex(
    tree: Octree,
    moments: VortexMoments,
    layout: TraversalLayout,
    kernel: SmoothingKernel,
    sigma: float,
    order: int,
    gradient: bool,
    vel: np.ndarray,
    grad: Optional[np.ndarray],
    budget_bytes: Optional[int] = None,
) -> None:
    """Far-field multipole pass, accumulated into sorted-order outputs.

    Cluster-frame factorization (see :mod:`repro.tree.localbasis`): each
    unique cluster node carries a weight matrix ``W`` mapping D-weighted
    monomials of ``r = target - center`` straight to velocity/gradient
    components, so the per-pair work is the radial chain, one incremental
    monomial table and a single batched GEMM; results land on the targets
    via one ``np.bincount`` per output component.  ``W`` is built once
    per (order, gradient) and cached on the layout.  Exact — matches the
    pairwise kernel to rounding error.
    """
    if layout.far_pairs == 0 or layout.far_nodes_u.size == 0:
        return
    budget = FAR_BUDGET_BYTES if budget_bytes is None else budget_bytes
    need = order + (2 if gradient else 1)
    ncols = BLOCK_END[need - 1]
    nout = 12 if gradient else 3
    n_mono = DEG_START[need + 1]
    nodes_u = layout.far_nodes_u
    wt = layout.far_weights.get((moments.token, order, gradient))
    if wt is None:
        w = node_far_weights(
            moments.m0[nodes_u],
            moments.m1[nodes_u] if order >= 1 else None,
            moments.m2[nodes_u] if order >= 2 else None,
            order, gradient,
        )
        # store transposed/sliced for the (B, nout, ncols) GEMM operand
        wt = np.ascontiguousarray(w[:, :ncols, :nout].transpose(0, 2, 1))
        layout.far_weights[(moments.token, order, gradient)] = wt
        while len(layout.far_weights) > _FAR_WEIGHT_SLOTS:
            layout.far_weights.pop(next(iter(layout.far_weights)))
    centers = moments.center[nodes_u]

    pstart = layout.far_node_pair_start
    pcount = pstart[1:] - pstart[:-1]
    korder = np.argsort(-pcount, kind="stable")
    # consecutive runs of the count-sorted nodes; the first (largest)
    # node of a run fixes the padded width
    batches: List[np.ndarray] = []
    i = 0
    while i < korder.size:
        pmax = int(pcount[korder[i]])
        nb = max(1, int(budget // max(pmax * _FAR_PAIR_BYTES, 1)))
        batches.append(korder[i:i + nb])
        i += nb

    pcap = max(int(pcount[kb[0]]) * kb.size for kb in batches)
    rt = np.empty((3, pcap), dtype=np.float64)
    psi = np.empty((n_mono, pcap), dtype=np.float64)
    ycat = np.empty((ncols, pcap), dtype=np.float64)
    n = vel.shape[0]
    gflat = grad.reshape(n, 9) if gradient else None
    pos = tree.positions
    for kbatch in batches:
        bsz = kbatch.size
        p = int(pcount[kbatch].max())
        pall = bsz * p
        lanes, valid = _padded_lanes(pstart[:-1][kbatch], pcount[kbatch], p)
        tflat = layout.far_pair_targets[lanes].reshape(-1)
        ppos = pos[tflat]
        ctr = centers[kbatch]
        rtv = rt[:, :pall]
        for c in range(3):
            np.subtract(
                ppos[:, c].reshape(bsz, p), ctr[:, c, None],
                out=rtv[c].reshape(bsz, p),
            )
        r2 = rtv[0] * rtv[0]
        r2 += rtv[1] * rtv[1]
        r2 += rtv[2] * rtv[2]
        chain = radial_chain(kernel, r2, sigma, need)
        if not valid.all():
            # padding lanes repeat a real pair; zeroing their chain
            # values zeroes every Ycat column they touch
            invalid = ~valid
            for arr in chain:
                arr.reshape(bsz, p)[invalid] = 0.0
        psiv = psi[:, :pall]
        monomial_rows(rtv, n_mono, psiv)
        ycv = ycat[:, :pall]
        for blk in range(need):
            lo, c0, c1 = BLOCK_LO[blk], BLOCK_COL[blk], BLOCK_END[blk]
            np.multiply(
                psiv[lo:lo + (c1 - c0)], chain[blk][None, :],
                out=ycv[c0:c1],
            )
        yb = ycv.reshape(ncols, bsz, p).transpose(1, 0, 2)
        out = np.matmul(wt[kbatch], yb)  # (bsz, nout, p)
        for c in range(3):
            vel[:, c] += np.bincount(
                tflat, weights=out[:, c, :].ravel(), minlength=n
            )
        if gradient:
            for c in range(9):
                gflat[:, c] += np.bincount(
                    tflat, weights=out[:, 3 + c, :].ravel(), minlength=n
                )


def batched_near_vortex(
    tree: Octree,
    charges_sorted: np.ndarray,
    layout: TraversalLayout,
    kernel: SmoothingKernel,
    sigma: float,
    gradient: bool,
    exclude_zero: bool,
    vel: np.ndarray,
    grad: Optional[np.ndarray],
    budget_bytes: Optional[int] = None,
    backend: Optional[KernelBackend] = None,
) -> None:
    """Near-field direct pass, accumulated into sorted-order outputs.

    ``backend`` selects the kernel-execution backend
    (:mod:`repro.backends`): batches are write-disjoint (each owns the
    target rows of its groups), so the CPU backends dispatch them
    through :meth:`~repro.backends.KernelBackend.map_batches` — serial
    for ``numpy``, a thread pool for ``threaded``, both bitwise
    identical — while the ``cupy`` backend runs the whole pass on the
    device (transfer points at this function's boundary only).  ``None``
    resolves via ``REPRO_BACKEND`` / the NumPy default.

    Dense form of :func:`~repro.vortex.rhs.biot_savart_pairs`: with
    ``r = t - s`` the cross products split into per-target and
    per-source factors,

        sum f (r x a)            = t x Fa - Fsxa,     F* = GEMM of f,

    and with ``h = g (r x a)`` kept per pair the gradient term splits
    once,

        sum h_a r_d   = (sum h)_a t_d - sum_s h_a s_d,

    where the second sum is again a batched matrix product over the
    sources.  Positions enter all split terms *relative to the group
    center*, and only one factor of ``r`` is ever expanded — ``h``
    itself stays on the scale of the true pair contribution — so
    rounding noise stays at the level of the reference path instead of
    being amplified by ``(|t| / |r|)^2``.  Distances stay explicit (no
    product expansion of ``r^2``): exact zeros are detected exactly
    (coincident points shift identically) and there is no cancellation.

    When every target lies within ``_NEAR_EXPAND_SIGMA`` core sizes of
    its group center (the production tree regime: leaves a few ``sigma``
    across) the pass switches to a fully expanded form —
    ``r^2`` from the GEMM identity ``|t|^2 + |s|^2 - 2 t.s`` and the
    gradient from 24 per-source feature columns contracted by two GEMMs
    per batch — which never materialises a (targets x sources x 3) pair
    tensor.  The expansion noise is bounded by the gate; ``exclude_zero``
    (singular kernels) always takes the explicit path, which detects
    exact zero distances reliably.
    """
    if layout.near_pairs == 0:
        return
    pos = tree.positions

    counts = layout.src_count
    active = np.flatnonzero(counts > 0)
    if active.size == 0:
        return
    active = active[np.argsort(-counts[active], kind="stable")]
    # The expanded path also requires a genuine multipole regime
    # (far pairs exist): theta ~ 0 degenerates every interaction to a
    # near pair spanning the whole domain, where the product expansion
    # amplifies rounding beyond reference accuracy.
    expand = (
        not exclude_zero
        and layout.far_pairs > 0
        and layout.group_radius2 <= (_NEAR_EXPAND_SIGMA * sigma) ** 2
    )
    if budget_bytes is not None:
        budget = budget_bytes
    else:
        budget = NEAR_GEMM_BUDGET_BYTES if expand else DEFAULT_BUDGET_BYTES
    elem_bytes = (
        _NEAR_GEMM_ELEM_BYTES[gradient] if expand
        else _NEAR_ELEM_BYTES[gradient]
    )
    batches = _pack_groups(
        active, layout.group_count, counts,
        elem_bytes, _NEAR_PAIR_BYTES[gradient], budget,
    )
    bk = get_backend(backend)
    if bk.device == "gpu":
        _near_vortex_device(
            bk, tree, charges_sorted, layout, kernel, sigma,
            gradient, exclude_zero, vel, grad, batches, expand,
        )
        return

    def run_batch(batch: np.ndarray) -> None:
        b = batch.size
        tc = layout.group_count[batch]
        sc = counts[batch]
        cmax, smax = int(tc.max()), int(sc.max())
        tidx, tvalid = _padded_lanes(layout.group_start[batch], tc, cmax)
        slane, svalid = _padded_lanes(layout.src_start[batch], sc, smax)
        sidx = layout.src_concat[slane]

        gc = layout.group_center[batch][:, None, :]
        t = pos[tidx] - gc  # (B, C, 3), group-local frame
        s = pos[sidx] - gc  # (B, S, 3)
        a = charges_sorted[sidx]
        flat = tidx[tvalid]

        if expand:
            # every feature column is linear in the charge, so zeroed
            # padded lanes contribute nothing to either GEMM
            a[~svalid] = 0.0
            sxa = _cross(s, a)
            r2 = np.matmul(t, s.transpose(0, 2, 1))
            r2 *= -2.0
            r2 += np.einsum("bci,bci->bc", t, t)[:, :, None]
            r2 += np.einsum("bsi,bsi->bs", s, s)[:, None, :]
            np.maximum(r2, 0.0, out=r2)  # GEMM form can round below zero
            f, g = kernel.f_g_from_r2(r2, sigma, gradient)
            nf = 24 if gradient else 6
            feat = np.empty((b, smax, nf), dtype=np.float64)
            feat[:, :, 0:3] = a
            feat[:, :, 3:6] = sxa
            if gradient:
                np.multiply(
                    a[:, :, :, None], s[:, :, None, :],
                    out=feat[:, :, 6:15].reshape(b, smax, 3, 3),
                )
                np.multiply(
                    sxa[:, :, :, None], s[:, :, None, :],
                    out=feat[:, :, 15:24].reshape(b, smax, 3, 3),
                )
            ff = np.matmul(f, feat[:, :, 0:6])
            u = _cross(t, ff[..., 0:3])
            u -= ff[..., 3:6]
            u *= -_INV_FOUR_PI
            vel[flat] += u[tvalid]
            if gradient:
                gg = np.matmul(g, feat)
                # sum_s h = t x (sum g a) - sum g (s x a)
                hsum = _cross(t, gg[..., 0:3])
                hsum -= gg[..., 3:6]
                g3 = gg[..., 6:15].reshape(b, cmax, 3, 3)
                g4 = gg[..., 15:24].reshape(b, cmax, 3, 3)
                # sum_s h_a s_d = (t X sum g a (x) s) - sum g (s x a)(x)s
                gm = hsum[..., :, None] * t[..., None, :]
                np.negative(g3, out=g3)
                _cross_matrix_add(gm, t, g3)
                gm += g4
                _eps_add(gm, ff[..., 0:3])
                gm *= -_INV_FOUR_PI
                grad[flat] += gm[tvalid]
            return

        r = t[:, :, None, :] - s[:, None, :, :]
        r2 = np.einsum("bcsi,bcsi->bcs", r, r)
        if not gradient:
            del r
        if exclude_zero:
            zero = r2 == 0.0
            r2[zero] = 1.0
        f, g = kernel.f_g_from_r2(r2, sigma, gradient)
        f *= svalid[:, None, :]
        if exclude_zero:
            f[zero] = 0.0
        fg = np.empty((b, smax, 6), dtype=np.float64)
        fg[:, :, 0:3] = a
        fg[:, :, 3:6] = _cross(s, a)
        ff = np.matmul(f, fg)
        u = _cross(t, ff[..., 0:3])
        u -= ff[..., 3:6]
        u *= -_INV_FOUR_PI
        vel[flat] += u[tvalid]

        if gradient:
            g *= svalid[:, None, :]
            if exclude_zero:
                g[zero] = 0.0
            h = _cross(r, a[:, None, :, :])
            del r
            h *= g[..., None]
            gm = np.einsum("bcsa->bca", h)[..., :, None] * t[..., None, :]
            gm -= np.matmul(h.transpose(0, 1, 3, 2), s[:, None, :, :])
            _eps_add(gm, ff[..., 0:3])
            gm *= -_INV_FOUR_PI
            grad[flat] += gm[tvalid]

    bk.map_batches(run_batch, batches)


def _xp_cross(xp, a, b):
    """``a x b`` for (..., 3) arrays in an arbitrary array namespace.

    Device-path twin of :func:`repro.tree.evaluate._cross`, which
    allocates through ``np.empty`` and therefore pins the result to the
    host; everything else in the cross product is ufunc arithmetic that
    dispatches through the namespace protocols unchanged.
    """
    out = xp.empty(np.broadcast_shapes(a.shape, b.shape), dtype=np.float64)
    out[..., 0] = a[..., 1] * b[..., 2] - a[..., 2] * b[..., 1]
    out[..., 1] = a[..., 2] * b[..., 0] - a[..., 0] * b[..., 2]
    out[..., 2] = a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0]
    return out


def _near_vortex_device(
    backend: KernelBackend,
    tree: Octree,
    charges_sorted: np.ndarray,
    layout: TraversalLayout,
    kernel: SmoothingKernel,
    sigma: float,
    gradient: bool,
    exclude_zero: bool,
    vel: np.ndarray,
    grad: Optional[np.ndarray],
    batches: List[np.ndarray],
    expand: bool,
) -> None:
    """Device-resident near-field pass (GPU backends).

    Mirrors the host batch body with the backend's array namespace:
    positions, charges and group centers cross to the device once per
    evaluation, per-batch index blocks cross as they are built (index
    math stays on the host — it is integer bookkeeping, not GEMM work),
    and the accumulated outputs cross back once at the end.  Those are
    the only transfer points.  Requires an array-namespace-generic
    kernel (``kernel.xp_generic``; the algebraic family and the singular
    kernel qualify — their radial factors are pure ufunc arithmetic).

    Results match the host backends to rounding error, not bitwise: the
    device GEMMs reduce in a different order.
    """
    if not getattr(kernel, "xp_generic", False):
        raise TypeError(
            f"kernel {type(kernel).__name__} is not array-namespace "
            "generic; device backends support the algebraic family and "
            "the singular kernel (see docs/backends.md)"
        )
    xp = backend.xp
    pos_d = backend.to_device(tree.positions)
    chg_d = backend.to_device(charges_sorted)
    ctr_d = backend.to_device(layout.group_center)
    vel_d = xp.zeros(vel.shape, dtype=np.float64)
    grad_d = xp.zeros(grad.shape, dtype=np.float64) if gradient else None

    for batch in batches:
        b = batch.size
        tc = layout.group_count[batch]
        sc = layout.src_count[batch]
        cmax, smax = int(tc.max()), int(sc.max())
        tidx, tvalid = _padded_lanes(layout.group_start[batch], tc, cmax)
        slane, svalid = _padded_lanes(layout.src_start[batch], sc, smax)
        sidx = layout.src_concat[slane]

        tidx_d = backend.to_device(tidx)
        tvalid_d = backend.to_device(tvalid)
        svalid_d = backend.to_device(svalid)
        gc = ctr_d[backend.to_device(batch)][:, None, :]
        t = pos_d[tidx_d] - gc
        s = pos_d[backend.to_device(sidx)] - gc
        a = chg_d[backend.to_device(sidx)]
        flat = tidx_d[tvalid_d]

        if expand:
            a[~svalid_d] = 0.0
            sxa = _xp_cross(xp, s, a)
            r2 = xp.matmul(t, s.transpose(0, 2, 1))
            r2 *= -2.0
            r2 += xp.einsum("bci,bci->bc", t, t)[:, :, None]
            r2 += xp.einsum("bsi,bsi->bs", s, s)[:, None, :]
            xp.maximum(r2, 0.0, out=r2)
            f, g = kernel.f_g_from_r2(r2, sigma, gradient)
            nf = 24 if gradient else 6
            feat = xp.empty((b, smax, nf), dtype=np.float64)
            feat[:, :, 0:3] = a
            feat[:, :, 3:6] = sxa
            if gradient:
                xp.multiply(
                    a[:, :, :, None], s[:, :, None, :],
                    out=feat[:, :, 6:15].reshape(b, smax, 3, 3),
                )
                xp.multiply(
                    sxa[:, :, :, None], s[:, :, None, :],
                    out=feat[:, :, 15:24].reshape(b, smax, 3, 3),
                )
            ff = xp.matmul(f, feat[:, :, 0:6])
            u = _xp_cross(xp, t, ff[..., 0:3])
            u -= ff[..., 3:6]
            u *= -_INV_FOUR_PI
            vel_d[flat] += u[tvalid_d]
            if gradient:
                gg = xp.matmul(g, feat)
                hsum = _xp_cross(xp, t, gg[..., 0:3])
                hsum -= gg[..., 3:6]
                g3 = gg[..., 6:15].reshape(b, cmax, 3, 3)
                g4 = gg[..., 15:24].reshape(b, cmax, 3, 3)
                gm = hsum[..., :, None] * t[..., None, :]
                xp.negative(g3, out=g3)
                _cross_matrix_add(gm, t, g3)
                gm += g4
                _eps_add(gm, ff[..., 0:3])
                gm *= -_INV_FOUR_PI
                grad_d[flat] += gm[tvalid_d]
            continue

        r = t[:, :, None, :] - s[:, None, :, :]
        r2 = xp.einsum("bcsi,bcsi->bcs", r, r)
        if not gradient:
            del r
        if exclude_zero:
            zero = r2 == 0.0
            r2[zero] = 1.0
        f, g = kernel.f_g_from_r2(r2, sigma, gradient)
        f *= svalid_d[:, None, :]
        if exclude_zero:
            f[zero] = 0.0
        fg = xp.empty((b, smax, 6), dtype=np.float64)
        fg[:, :, 0:3] = a
        fg[:, :, 3:6] = _xp_cross(xp, s, a)
        ff = xp.matmul(f, fg)
        u = _xp_cross(xp, t, ff[..., 0:3])
        u -= ff[..., 3:6]
        u *= -_INV_FOUR_PI
        vel_d[flat] += u[tvalid_d]

        if gradient:
            g *= svalid_d[:, None, :]
            if exclude_zero:
                g[zero] = 0.0
            h = _xp_cross(xp, r, a[:, None, :, :])
            del r
            h *= g[..., None]
            gm = xp.einsum("bcsa->bca", h)[..., :, None] * t[..., None, :]
            gm -= xp.matmul(h.transpose(0, 1, 3, 2), s[:, None, :, :])
            _eps_add(gm, ff[..., 0:3])
            gm *= -_INV_FOUR_PI
            grad_d[flat] += gm[tvalid_d]

    vel += backend.from_device(vel_d)
    if gradient:
        grad += backend.from_device(grad_d)


# ---------------------------------------------------------------------------
# Coulomb (scalar charge) drivers
# ---------------------------------------------------------------------------

def _map_host_chunks(backend: KernelBackend, fn, chunks) -> None:
    """Run write-disjoint host chunks through a CPU backend's strategy.

    Device backends have no device implementation of the scalar-charge
    pair streams, so their chunks run on the host serial loop instead of
    ``map_batches`` (whose semantics belong to the device).
    """
    if backend.device != "cpu":
        for ab in chunks:
            fn(ab)
        return
    backend.map_batches(fn, chunks)

def batched_far_coulomb(
    tree: Octree,
    moments: CoulombMoments,
    layout: TraversalLayout,
    kernel: SmoothingKernel,
    sigma: float,
    order: int,
    phi: np.ndarray,
    field: np.ndarray,
    budget_bytes: Optional[int] = None,
    backend: Optional[KernelBackend] = None,
) -> None:
    """Far-field multipole pass for scalar charges (sorted order).

    Chunks cover disjoint slot ranges, so CPU backends may run them
    concurrently (bitwise identical — no shared accumulation).  Device
    backends fall back to the host serial loop here: the scalar-charge
    pair stream is gather-bound, not GEMM-bound, and does not pay for a
    transfer (see ``docs/backends.md``).
    """
    if layout.far_pairs == 0:
        return
    m1 = moments.m1 if order >= 1 else None
    m2 = moments.m2 if order >= 2 else None
    chunk = _chunk_size(budget_bytes, _FAR_BYTES_PER_PAIR[False])

    def run_chunk(ab: Tuple[int, int]) -> None:
        a, b = ab
        reps, idx, total = _expand(layout.far_count, layout.far_base, a, b)
        if total == 0:
            return
        nodes = layout.far.node[idx]
        p, e = evaluate_coulomb_far_pairs(
            tree.positions[a:b][reps],
            moments.center[nodes],
            moments.m0[nodes],
            m1[nodes] if m1 is not None else None,
            m2[nodes] if m2 is not None else None,
            kernel,
            sigma,
            order=order,
        )
        _scatter_add(phi, a, reps, p)
        _scatter_add(field, a, reps, e)

    _map_host_chunks(
        get_backend(backend), run_chunk,
        list(_slot_chunks(layout.far_cum, chunk)),
    )


def batched_near_coulomb(
    tree: Octree,
    charges_sorted: np.ndarray,
    layout: TraversalLayout,
    kernel: SmoothingKernel,
    sigma: float,
    exclude_zero: bool,
    phi: np.ndarray,
    field: np.ndarray,
    budget_bytes: Optional[int] = None,
    backend: Optional[KernelBackend] = None,
) -> None:
    """Near-field direct pass for scalar charges (sorted order).

    Same backend semantics as :func:`batched_far_coulomb`: write-disjoint
    slot chunks run through the CPU backend's execution strategy, device
    backends stay on the host for the scalar pair stream.
    """
    if layout.near_pairs == 0:
        return
    chunk = _chunk_size(budget_bytes, _NEAR_BYTES_PER_PAIR[False])

    def run_chunk(ab: Tuple[int, int]) -> None:
        a, b = ab
        reps, idx, total = _expand(layout.near_count, layout.near_base, a, b)
        if total == 0:
            return
        src = layout.src_concat[idx]
        p, e = coulomb_pairs(
            tree.positions[a:b][reps],
            tree.positions[src],
            charges_sorted[src],
            kernel=kernel,
            sigma=sigma,
            exclude_zero=exclude_zero,
        )
        _scatter_add(phi, a, reps, p)
        _scatter_add(field, a, reps, e)

    _map_host_chunks(
        get_backend(backend), run_chunk,
        list(_slot_chunks(layout.near_cum, chunk)),
    )
