"""Multipole acceptance criteria (paper Sec. III-A, Fig. 4).

The classical Barnes-Hut MAC accepts a cluster for interaction when the
ratio of its box size ``s`` to its distance ``d`` from the target satisfies
``s/d <= theta``.  Larger ``theta`` means coarser, faster, less accurate
summation — the knob the paper turns to build PFASST's coarse propagator
(theta 0.3 fine / 0.6 coarse).

Traversal here is *group-collective*: a whole batch of nearby targets
(one source-tree leaf) is tested at once against each candidate node, using
the conservative distance ``d = |c_node - c_group| - r_group`` so that the
acceptance holds for every particle in the group.  ``theta = 0`` never
accepts, reproducing direct summation exactly.

Variants (Salmon & Warren 1994 discuss the zoo):

* ``"bh"``   — classical: ``s = cell edge length``
* ``"bmax"`` — tighter: ``s = 2 * bmax`` with ``bmax`` the true cluster
  radius about the expansion center; stricter for sparse cells, more
  permissive for full ones.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

__all__ = ["MACVariant", "mac_accept", "mac_accept_sq"]

MACVariant = Literal["bh", "bmax"]


def _extent(
    node_size: np.ndarray, node_bmax: np.ndarray, variant: MACVariant
) -> np.ndarray:
    if variant == "bh":
        return node_size
    if variant == "bmax":
        return 2.0 * node_bmax
    raise ValueError(f"unknown MAC variant {variant!r}")


def mac_accept(
    theta: float,
    node_size: np.ndarray,
    node_bmax: np.ndarray,
    center_dist: np.ndarray,
    group_radius: np.ndarray,
    variant: MACVariant = "bh",
) -> np.ndarray:
    """Vectorised MAC decision for (group, node) candidate pairs.

    Parameters
    ----------
    theta :
        Opening parameter, >= 0.  Zero rejects everything.
    node_size :
        Cell edge lengths of the candidate nodes.
    node_bmax :
        Cluster radii of the candidate nodes (used by ``"bmax"``).
    center_dist :
        Distances between group centers and node centers.
    group_radius :
        Bounding radii of the target groups.
    variant :
        MAC flavour.

    Returns
    -------
    Boolean mask of accepted pairs.
    """
    if theta < 0:
        raise ValueError(f"theta must be >= 0, got {theta}")
    if theta == 0.0:
        return np.zeros(np.broadcast(node_size, center_dist).shape, dtype=bool)
    extent = _extent(node_size, node_bmax, variant)
    d = center_dist - group_radius
    return (d > 0.0) & (extent <= theta * d)


def mac_accept_sq(
    theta: float,
    node_size: np.ndarray,
    node_bmax: np.ndarray,
    center_dist_sq: np.ndarray,
    group_radius: np.ndarray,
    variant: MACVariant = "bh",
) -> np.ndarray:
    """MAC decision from *squared* center distances (no square root).

    Mathematically equivalent to :func:`mac_accept`: with ``d = dist -
    r_group`` the acceptance ``d > 0 and extent <= theta d`` rewrites (all
    quantities non-negative) as

        dist^2 > r_group^2   and   theta^2 dist^2 >= (extent + theta r_group)^2

    which lets the traversal skip the per-wave ``np.sqrt`` over the whole
    frontier.  :func:`mac_accept` keeps its distance-based signature (and
    exact comparison semantics) for backward compatibility.
    """
    if theta < 0:
        raise ValueError(f"theta must be >= 0, got {theta}")
    if theta == 0.0:
        return np.zeros(
            np.broadcast(node_size, center_dist_sq).shape, dtype=bool
        )
    extent = _extent(node_size, node_bmax, variant)
    thr = extent + theta * group_radius
    return (center_dist_sq > group_radius * group_radius) & (
        theta * theta * center_dist_sq >= thr * thr
    )
