"""Far-field (multipole) evaluation of cluster interactions.

Implements the curl of the expanded vector streamfunction for vortex
clusters — velocity and velocity gradient through quadrupole order — and
the expanded potential/field for Coulomb clusters.  All formulas reduce the
derivative tensors of the radially symmetric Green's function to the radial
chain ``D1..D4`` (see :mod:`repro.tree.profiles`), contracted analytically
so no rank-4 tensors are ever materialised per pair:

    u      = D1 (r x M0)
             - D2 (r x w) - D1 vec(M1)                        [dipole]
             + D3 (r x v) + 2 D2 vec(m) + D2 (r x tr)         [quadrupole]

    du/dx  = D2 (r x M0) r^T + D1 E(M0)
             - D3 (r x w) r^T - D2 [vec(M1) r^T + E(w) + r X M1]
             + D4 (r x v) r^T
             + D3 [2 vec(m) r^T + E(v) + (r x tr) r^T + 2 (r X m)]
             + D2 [2 vec2(M2) + E(tr)]

with ``r = target - center``, ``w = M1 r``, ``m_cb = M2_cbk r_k``,
``v = m r``, ``tr_c = M2_cjj``, ``vec(B)_a = eps_abc B_cb``,
``E(x)_ad = eps_adm x_m`` and ``(r X B)_ad = eps_abc r_b B_cd``.
Verified in the tests against direct summation (a point cluster matches
*exactly*; extended clusters converge with distance and order).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tree.profiles import radial_chain
from repro.vortex.kernels import SmoothingKernel

__all__ = [
    "evaluate_vortex_far",
    "evaluate_coulomb_far",
    "evaluate_vortex_far_pairs",
    "evaluate_coulomb_far_pairs",
]


def _vec_antisym(mat: np.ndarray) -> np.ndarray:
    """``vec(B)_a = eps_abc B_cb`` for arrays (..., 3, 3) -> (..., 3)."""
    return np.stack(
        [
            mat[..., 2, 1] - mat[..., 1, 2],
            mat[..., 0, 2] - mat[..., 2, 0],
            mat[..., 1, 0] - mat[..., 0, 1],
        ],
        axis=-1,
    )


def _eps_matrix(vec: np.ndarray) -> np.ndarray:
    """``E(x)_ad = eps_adm x_m`` for arrays (..., 3) -> (..., 3, 3)."""
    out = np.zeros(vec.shape[:-1] + (3, 3), dtype=np.float64)
    out[..., 0, 1] = vec[..., 2]
    out[..., 0, 2] = -vec[..., 1]
    out[..., 1, 0] = -vec[..., 2]
    out[..., 1, 2] = vec[..., 0]
    out[..., 2, 0] = vec[..., 1]
    out[..., 2, 1] = -vec[..., 0]
    return out


def _cross_matrix(r: np.ndarray, mat: np.ndarray) -> np.ndarray:
    """``(r X B)_ad = eps_abc r_b B_cd`` for (..., 3) and (..., 3, 3)."""
    out = np.zeros(mat.shape, dtype=np.float64)
    _cross_matrix_add(out, r, mat)
    return out


def _cross_matrix_add(out: np.ndarray, r: np.ndarray, mat: np.ndarray) -> None:
    """Accumulate ``(r X B)_ad = eps_abc r_b B_cd`` onto ``out`` in place."""
    r1, r2, r3 = r[..., 0], r[..., 1], r[..., 2]
    out[..., 0, :] += (
        r2[..., None] * mat[..., 2, :] - r3[..., None] * mat[..., 1, :]
    )
    out[..., 1, :] += (
        r3[..., None] * mat[..., 0, :] - r1[..., None] * mat[..., 2, :]
    )
    out[..., 2, :] += (
        r1[..., None] * mat[..., 1, :] - r2[..., None] * mat[..., 0, :]
    )


def _cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a x b`` for (..., 3) arrays, without :func:`np.cross` overhead."""
    out = np.empty(np.broadcast_shapes(a.shape, b.shape), dtype=np.float64)
    out[..., 0] = a[..., 1] * b[..., 2] - a[..., 2] * b[..., 1]
    out[..., 1] = a[..., 2] * b[..., 0] - a[..., 0] * b[..., 2]
    out[..., 2] = a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0]
    return out


def _eps_add(out: np.ndarray, vec: np.ndarray) -> None:
    """Accumulate ``E(x)_ad = eps_adm x_m`` onto ``out`` (..., 3, 3)."""
    out[..., 0, 1] += vec[..., 2]
    out[..., 0, 2] -= vec[..., 1]
    out[..., 1, 0] -= vec[..., 2]
    out[..., 1, 2] += vec[..., 0]
    out[..., 2, 0] += vec[..., 1]
    out[..., 2, 1] -= vec[..., 0]


def evaluate_vortex_far_pairs(
    targets: np.ndarray,
    centers: np.ndarray,
    m0: np.ndarray,
    m1: Optional[np.ndarray],
    m2: Optional[np.ndarray],
    kernel: SmoothingKernel,
    sigma: float,
    order: int = 2,
    gradient: bool = True,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-pair far-field contributions of P (particle, cluster) pairs.

    All arrays are aligned on axis 0: ``targets[p]`` interacts with the
    cluster ``(centers[p], m0[p], m1[p], m2[p])``.  Returns the *unsummed*
    velocity (P, 3) and gradient (P, 3, 3) contributions; the caller
    scatter-adds them onto the targets (segment sums in the batched
    engine).  This is the single source of truth for the expansion
    formulas; :func:`evaluate_vortex_far` wraps it on a (target, cluster)
    product grid.
    """
    if order not in (0, 1, 2):
        raise ValueError(f"order must be 0, 1 or 2, got {order}")
    targets = np.asarray(targets, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    p = targets.shape[0]
    if p == 0:
        return (np.zeros((0, 3), dtype=np.float64),
                (np.zeros((0, 3, 3), dtype=np.float64) if gradient else None))

    r = targets - centers  # (P, 3)
    r2 = np.einsum("pi,pi->p", r, r)
    # orders needed: velocity uses D1..D(order+1); gradient D1..D(order+2)
    need = order + (2 if gradient else 1)
    chain = radial_chain(kernel, r2, sigma, need)
    d1 = chain[0]
    d2 = chain[1] if need >= 2 else None
    d3 = chain[2] if need >= 3 else None
    d4 = chain[3] if need >= 4 else None

    # Every cross product in the docstring formulas shares the same left
    # factor r, so the expansion collapses to a handful of combined
    # per-pair vectors:
    #
    #   u  = r x cu + su          cu = D1 M0 - D2 w + D3 v + D2 tr
    #                             su = -D1 vec(M1) + 2 D2 vec(m)
    #   du = (r x cg + sg) (x) r + E(cu) + r X B + 2 D2 vec2
    #                             cg = D2 M0 - D3 w + D4 v + D3 tr
    #                             sg = -D2 vec(M1) + 2 D3 vec(m)
    #                             B  = -D2 M1 + 2 D3 m
    #
    # (the E() argument of the gradient is the same combined vector cu).
    w = vec1 = m = v = vecm = None
    cu = d1[:, None] * m0
    if order >= 1:
        if m1 is None:
            raise ValueError("order >= 1 requires m1 moments")
        w = np.einsum("pcj,pj->pc", m1, r)
        vec1 = _vec_antisym(m1)  # (P, 3)
        cu -= d2[:, None] * w
    if order >= 2:
        if m2 is None:
            raise ValueError("order >= 2 requires m2 moments")
        m = np.einsum("pcbj,pj->pcb", m2, r)  # m_cb = M2_cbk r_k
        v = np.einsum("pcj,pj->pc", m, r)
        tr = np.einsum("pcjj->pc", m2)  # (P, 3)
        vecm = _vec_antisym(m)
        cu += d3[:, None] * v + d2[:, None] * tr

    u = _cross(r, cu)
    if order >= 1:
        u -= d1[:, None] * vec1
    if order >= 2:
        u += (2.0 * d2)[:, None] * vecm

    g = None
    if gradient:
        cg = d2[:, None] * m0
        if order >= 1:
            cg -= d3[:, None] * w
        if order >= 2:
            cg += d4[:, None] * v + d3[:, None] * tr
        left = _cross(r, cg)
        if order >= 1:
            left -= d2[:, None] * vec1
        if order >= 2:
            left += (2.0 * d3)[:, None] * vecm
        g = left[:, :, None] * r[:, None, :]
        _eps_add(g, cu)
        if order >= 1:
            b = (-d2)[:, None, None] * m1
            if order >= 2:
                b += (2.0 * d3)[:, None, None] * m
            _cross_matrix_add(g, r, b)
        if order >= 2:
            vec2 = np.stack(
                [
                    m2[:, 2, 1, :] - m2[:, 1, 2, :],
                    m2[:, 0, 2, :] - m2[:, 2, 0, :],
                    m2[:, 1, 0, :] - m2[:, 0, 1, :],
                ],
                axis=1,
            )  # (P, 3, 3): vec2_ad = eps_abc M2_cbd
            g += (2.0 * d2)[:, None, None] * vec2

    return u, g


def _pair_grid(
    targets: np.ndarray, centers: np.ndarray, *moments: Optional[np.ndarray]
) -> Tuple[np.ndarray, ...]:
    """Expand a (P targets) x (K clusters) product onto flat pair arrays."""
    p, k = targets.shape[0], centers.shape[0]
    flat_t = np.repeat(targets, k, axis=0)
    out = [flat_t]
    for arr in (centers,) + moments:
        if arr is None:
            out.append(None)
        else:
            tiled = np.broadcast_to(arr[None], (p,) + arr.shape)
            out.append(tiled.reshape((p * k,) + arr.shape[1:]))
    return tuple(out)


def evaluate_vortex_far(
    targets: np.ndarray,
    centers: np.ndarray,
    m0: np.ndarray,
    m1: Optional[np.ndarray],
    m2: Optional[np.ndarray],
    kernel: SmoothingKernel,
    sigma: float,
    order: int = 2,
    gradient: bool = True,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Velocity (P, 3) and gradient (P, 3, 3) induced by K clusters.

    ``order``: 0 monopole, 1 +dipole, 2 +quadrupole.  ``m1``/``m2`` may be
    None for lower orders.  Thin wrapper over
    :func:`evaluate_vortex_far_pairs` on the full (target, cluster) grid.
    """
    if order not in (0, 1, 2):
        raise ValueError(f"order must be 0, 1 or 2, got {order}")
    targets = np.asarray(targets, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    p, k = targets.shape[0], centers.shape[0]
    velocity = np.zeros((p, 3), dtype=np.float64)
    grad = np.zeros((p, 3, 3), dtype=np.float64) if gradient else None
    if p == 0 or k == 0:
        return velocity, grad
    flat_t, flat_c, f0, f1, f2 = _pair_grid(targets, centers, m0, m1, m2)
    u, g = evaluate_vortex_far_pairs(
        flat_t, flat_c, f0, f1, f2, kernel, sigma,
        order=order, gradient=gradient,
    )
    velocity = u.reshape(p, k, 3).sum(axis=1)
    if gradient:
        grad = g.reshape(p, k, 3, 3).sum(axis=1)
    return velocity, grad


def evaluate_coulomb_far_pairs(
    targets: np.ndarray,
    centers: np.ndarray,
    m0: np.ndarray,
    m1: Optional[np.ndarray],
    m2: Optional[np.ndarray],
    kernel: SmoothingKernel,
    sigma: float,
    order: int = 2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-pair potential (P,) and field (P, 3) contributions.

    Pairwise analogue of :func:`evaluate_vortex_far_pairs` for scalar
    charges; contributions are unsummed.
    """
    from repro.tree.profiles import potential_profile

    if order not in (0, 1, 2):
        raise ValueError(f"order must be 0, 1 or 2, got {order}")
    targets = np.asarray(targets, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    p = targets.shape[0]
    if p == 0:
        return np.zeros(0, dtype=np.float64), np.zeros((0, 3), dtype=np.float64)

    r = targets - centers  # (P, 3)
    r2 = np.einsum("pi,pi->p", r, r)
    need = order + 1
    d0 = potential_profile(kernel, r2, sigma)
    chain = radial_chain(kernel, r2, sigma, need)
    d1 = chain[0]
    d2 = chain[1] if need >= 2 else None
    d3 = chain[2] if need >= 3 else None

    # phi = Q0 T0 - Q1_j T1_j + Q2_jk T2_jk ; E_d = -d(phi)/d(x_d).
    # Every term of E parallel to r is folded into one scalar coefficient
    # before the single (P, 3) broadcast, so the order-2 field costs two
    # (P, 3) products instead of five.
    pot = m0 * d0
    radial = -(d1 * m0)
    if order >= 1:
        if m1 is None:
            raise ValueError("order >= 1 requires m1 moments")
        m1r = np.einsum("pj,pj->p", m1, r)
        pot = pot - d1 * m1r
        # -d/dx_d [ -Q1_j T1_j ] = +(D2 r_d m1r + D1 Q1_d)
        radial += d2 * m1r
    if order >= 2:
        if m2 is None:
            raise ValueError("order >= 2 requires m2 moments")
        m2r = np.einsum("pjl,pl->pj", m2, r)
        m2rr = np.einsum("pj,pj->p", m2r, r)
        trq = np.einsum("pjj->p", m2)
        pot = pot + d2 * m2rr + d1 * trq
        radial -= d3 * m2rr + d2 * trq
    e = radial[:, None] * r
    if order >= 1:
        e += d1[:, None] * m1
    if order >= 2:
        e -= 2.0 * d2[:, None] * m2r
    return pot, e


def evaluate_coulomb_far(
    targets: np.ndarray,
    centers: np.ndarray,
    m0: np.ndarray,
    m1: Optional[np.ndarray],
    m2: Optional[np.ndarray],
    kernel: SmoothingKernel,
    sigma: float,
    order: int = 2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Potential (P,) and field ``E = -grad phi`` (P, 3) of K clusters.

    Uses the same radial chain plus the potential profile D0; the
    convention is ``phi = sum_p q_p G(|x - x_p|)`` with ``G ~ 1/(4 pi r)``
    far away.  Thin wrapper over :func:`evaluate_coulomb_far_pairs` on the
    full (target, cluster) grid.
    """
    if order not in (0, 1, 2):
        raise ValueError(f"order must be 0, 1 or 2, got {order}")
    targets = np.asarray(targets, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    p, k = targets.shape[0], centers.shape[0]
    phi = np.zeros(p, dtype=np.float64)
    field = np.zeros((p, 3), dtype=np.float64)
    if p == 0 or k == 0:
        return phi, field
    flat_t, flat_c, f0, f1, f2 = _pair_grid(targets, centers, m0, m1, m2)
    pot, e = evaluate_coulomb_far_pairs(
        flat_t, flat_c, f0, f1, f2, kernel, sigma, order=order
    )
    return pot.reshape(p, k).sum(axis=1), e.reshape(p, k, 3).sum(axis=1)
