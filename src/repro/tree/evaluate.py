"""Far-field (multipole) evaluation of cluster interactions.

Implements the curl of the expanded vector streamfunction for vortex
clusters — velocity and velocity gradient through quadrupole order — and
the expanded potential/field for Coulomb clusters.  All formulas reduce the
derivative tensors of the radially symmetric Green's function to the radial
chain ``D1..D4`` (see :mod:`repro.tree.profiles`), contracted analytically
so no rank-4 tensors are ever materialised per pair:

    u      = D1 (r x M0)
             - D2 (r x w) - D1 vec(M1)                        [dipole]
             + D3 (r x v) + 2 D2 vec(m) + D2 (r x tr)         [quadrupole]

    du/dx  = D2 (r x M0) r^T + D1 E(M0)
             - D3 (r x w) r^T - D2 [vec(M1) r^T + E(w) + r X M1]
             + D4 (r x v) r^T
             + D3 [2 vec(m) r^T + E(v) + (r x tr) r^T + 2 (r X m)]
             + D2 [2 vec2(M2) + E(tr)]

with ``r = target - center``, ``w = M1 r``, ``m_cb = M2_cbk r_k``,
``v = m r``, ``tr_c = M2_cjj``, ``vec(B)_a = eps_abc B_cb``,
``E(x)_ad = eps_adm x_m`` and ``(r X B)_ad = eps_abc r_b B_cd``.
Verified in the tests against direct summation (a point cluster matches
*exactly*; extended clusters converge with distance and order).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tree.profiles import radial_chain
from repro.vortex.kernels import SmoothingKernel

__all__ = ["evaluate_vortex_far", "evaluate_coulomb_far"]


def _vec_antisym(mat: np.ndarray) -> np.ndarray:
    """``vec(B)_a = eps_abc B_cb`` for arrays (..., 3, 3) -> (..., 3)."""
    return np.stack(
        [
            mat[..., 2, 1] - mat[..., 1, 2],
            mat[..., 0, 2] - mat[..., 2, 0],
            mat[..., 1, 0] - mat[..., 0, 1],
        ],
        axis=-1,
    )


def _eps_matrix(vec: np.ndarray) -> np.ndarray:
    """``E(x)_ad = eps_adm x_m`` for arrays (..., 3) -> (..., 3, 3)."""
    out = np.zeros(vec.shape[:-1] + (3, 3), dtype=np.float64)
    out[..., 0, 1] = vec[..., 2]
    out[..., 0, 2] = -vec[..., 1]
    out[..., 1, 0] = -vec[..., 2]
    out[..., 1, 2] = vec[..., 0]
    out[..., 2, 0] = vec[..., 1]
    out[..., 2, 1] = -vec[..., 0]
    return out


def _cross_matrix(r: np.ndarray, mat: np.ndarray) -> np.ndarray:
    """``(r X B)_ad = eps_abc r_b B_cd`` for (..., 3) and (..., 3, 3)."""
    r1, r2, r3 = r[..., 0], r[..., 1], r[..., 2]
    out = np.empty(mat.shape, dtype=np.float64)
    out[..., 0, :] = (
        r2[..., None] * mat[..., 2, :] - r3[..., None] * mat[..., 1, :]
    )
    out[..., 1, :] = (
        r3[..., None] * mat[..., 0, :] - r1[..., None] * mat[..., 2, :]
    )
    out[..., 2, :] = (
        r1[..., None] * mat[..., 1, :] - r2[..., None] * mat[..., 0, :]
    )
    return out


def evaluate_vortex_far(
    targets: np.ndarray,
    centers: np.ndarray,
    m0: np.ndarray,
    m1: Optional[np.ndarray],
    m2: Optional[np.ndarray],
    kernel: SmoothingKernel,
    sigma: float,
    order: int = 2,
    gradient: bool = True,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Velocity (P, 3) and gradient (P, 3, 3) induced by K clusters.

    ``order``: 0 monopole, 1 +dipole, 2 +quadrupole.  ``m1``/``m2`` may be
    None for lower orders.
    """
    if order not in (0, 1, 2):
        raise ValueError(f"order must be 0, 1 or 2, got {order}")
    targets = np.asarray(targets, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    p, k = targets.shape[0], centers.shape[0]
    velocity = np.zeros((p, 3))
    grad = np.zeros((p, 3, 3)) if gradient else None
    if p == 0 or k == 0:
        return velocity, grad

    r = targets[:, None, :] - centers[None, :, :]  # (P, K, 3)
    r2 = np.einsum("pki,pki->pk", r, r)
    # orders needed: velocity uses D1..D(order+1); gradient D1..D(order+2)
    need = order + (2 if gradient else 1)
    chain = radial_chain(kernel, r2, sigma, need)
    d1 = chain[0]
    d2 = chain[1] if need >= 2 else None
    d3 = chain[2] if need >= 3 else None
    d4 = chain[3] if need >= 4 else None

    # ---- monopole -----------------------------------------------------
    c_m0 = np.cross(r, m0[None, :, :])  # (P, K, 3) = r x M0
    u = d1[..., None] * c_m0
    if gradient:
        g = (
            np.einsum("pk,pka,pkd->pkad", d2, c_m0, r)
            + d1[..., None, None] * _eps_matrix(m0)[None]
        )

    # ---- dipole -------------------------------------------------------
    if order >= 1:
        if m1 is None:
            raise ValueError("order >= 1 requires m1 moments")
        w = np.einsum("kcj,pkj->pkc", m1, r)
        vec1 = _vec_antisym(m1)  # (K, 3)
        c_w = np.cross(r, w)
        u = u - d2[..., None] * c_w - d1[..., None] * vec1[None]
        if gradient:
            g = g - np.einsum("pk,pka,pkd->pkad", d3, c_w, r)
            g = g - d2[..., None, None] * (
                np.einsum("ka,pkd->pkad", vec1, r)
                + _eps_matrix(w)
                + _cross_matrix(r, np.broadcast_to(m1[None], (p, k, 3, 3)))
            )

    # ---- quadrupole ---------------------------------------------------
    if order >= 2:
        if m2 is None:
            raise ValueError("order >= 2 requires m2 moments")
        m = np.einsum("kcbj,pkj->pkcb", m2, r)  # m_cb = M2_cbk r_k
        v = np.einsum("pkcj,pkj->pkc", m, r)
        tr = np.einsum("kcjj->kc", m2)  # (K, 3)
        vecm = _vec_antisym(m)
        c_v = np.cross(r, v)
        c_tr = np.cross(r, np.broadcast_to(tr[None], (p, k, 3)))
        u = u + d3[..., None] * c_v + d2[..., None] * (2.0 * vecm + c_tr)
        if gradient:
            vec2 = np.stack(
                [
                    m2[:, 2, 1, :] - m2[:, 1, 2, :],
                    m2[:, 0, 2, :] - m2[:, 2, 0, :],
                    m2[:, 1, 0, :] - m2[:, 0, 1, :],
                ],
                axis=1,
            )  # (K, 3, 3): vec2_ad = eps_abc M2_cbd
            g = g + np.einsum("pk,pka,pkd->pkad", d4, c_v, r)
            g = g + d3[..., None, None] * (
                2.0 * np.einsum("pka,pkd->pkad", vecm, r)
                + _eps_matrix(v)
                + np.einsum("pka,pkd->pkad", c_tr, r)
                + 2.0 * _cross_matrix(r, m)
            )
            g = g + d2[..., None, None] * (
                2.0 * vec2[None] + _eps_matrix(tr)[None]
            )

    velocity = u.sum(axis=1)
    if gradient:
        grad = g.sum(axis=1)
    return velocity, grad


def evaluate_coulomb_far(
    targets: np.ndarray,
    centers: np.ndarray,
    m0: np.ndarray,
    m1: Optional[np.ndarray],
    m2: Optional[np.ndarray],
    kernel: SmoothingKernel,
    sigma: float,
    order: int = 2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Potential (P,) and field ``E = -grad phi`` (P, 3) of K clusters.

    Uses the same radial chain plus the potential profile D0; the
    convention is ``phi = sum_p q_p G(|x - x_p|)`` with ``G ~ 1/(4 pi r)``
    far away.
    """
    from repro.tree.profiles import potential_profile

    if order not in (0, 1, 2):
        raise ValueError(f"order must be 0, 1 or 2, got {order}")
    targets = np.asarray(targets, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    p, k = targets.shape[0], centers.shape[0]
    phi = np.zeros(p)
    field = np.zeros((p, 3))
    if p == 0 or k == 0:
        return phi, field

    r = targets[:, None, :] - centers[None, :, :]
    r2 = np.einsum("pki,pki->pk", r, r)
    need = order + 1
    d0 = potential_profile(kernel, r2, sigma)
    chain = radial_chain(kernel, r2, sigma, need)
    d1 = chain[0]
    d2 = chain[1] if need >= 2 else None
    d3 = chain[2] if need >= 3 else None

    # phi = Q0 T0 - Q1_j T1_j + Q2_jk T2_jk ; E_d = -d(phi)/d(x_d)
    pot = m0[None, :] * d0
    e = -np.einsum("pk,k,pkd->pkd", d1, m0, r)
    if order >= 1:
        if m1 is None:
            raise ValueError("order >= 1 requires m1 moments")
        m1r = np.einsum("kj,pkj->pk", m1, r)
        pot = pot - d1 * m1r
        # -d/dx_d [ -Q1_j T1_j ] = +(D2 r_d m1r + D1 Q1_d)
        e = e + np.einsum("pk,pk,pkd->pkd", d2, m1r, r) + d1[..., None] * m1[None]
    if order >= 2:
        if m2 is None:
            raise ValueError("order >= 2 requires m2 moments")
        m2r = np.einsum("kjl,pkl->pkj", m2, r)
        m2rr = np.einsum("pkj,pkj->pk", m2r, r)
        trq = np.einsum("kjj->k", m2)
        pot = pot + d2 * m2rr + d1 * trq[None, :]
        e = e - (
            np.einsum("pk,pk,pkd->pkd", d3, m2rr, r)
            + 2.0 * d2[..., None] * m2r
            + np.einsum("pk,k,pkd->pkd", d2, trq, r)
        )
    return pot.sum(axis=1), e.sum(axis=1)
