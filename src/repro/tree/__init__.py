"""Barnes-Hut tree code ("PEPC"): oct-tree, multipoles, MAC, traversal."""

from repro.tree.morton import (
    MAX_DEPTH,
    BoundingCube,
    morton_encode,
    morton_decode,
    hilbert_encode,
    quantize,
    key_at_level,
    child_index,
    cell_of_key,
)
from repro.tree.build import Octree, build_octree
from repro.tree.multipole import (
    VortexMoments,
    CoulombMoments,
    compute_vortex_moments,
    compute_coulomb_moments,
)
from repro.tree.profiles import (
    RationalProfile,
    radial_chain,
    potential_profile,
    supports_multipoles,
)
from repro.tree.mac import MACVariant, mac_accept, mac_accept_sq
from repro.tree.traversal import InteractionLists, dual_traversal
from repro.tree.evaluate import (
    evaluate_vortex_far,
    evaluate_coulomb_far,
    evaluate_vortex_far_pairs,
    evaluate_coulomb_far_pairs,
)
from repro.tree.state import (
    CacheStats,
    TreeState,
    TreeStateCache,
    array_fingerprint,
)
from repro.tree.engine import (
    SegmentLayout,
    TraversalLayout,
    build_traversal_layout,
    segment_layout,
)
from repro.tree.evaluator import TreeStats, TreeEvaluator, TreeCoulombSolver
from repro.tree.multirate import MultirateTreeEvaluator
from repro.tree.domain import (
    DomainDecomposition,
    sfc_partition,
    cover_key_range,
    branch_counts,
    partition_box_surface,
)

__all__ = [
    "MAX_DEPTH",
    "BoundingCube",
    "morton_encode",
    "morton_decode",
    "hilbert_encode",
    "quantize",
    "key_at_level",
    "child_index",
    "cell_of_key",
    "Octree",
    "build_octree",
    "VortexMoments",
    "CoulombMoments",
    "compute_vortex_moments",
    "compute_coulomb_moments",
    "RationalProfile",
    "radial_chain",
    "potential_profile",
    "supports_multipoles",
    "MACVariant",
    "mac_accept",
    "mac_accept_sq",
    "InteractionLists",
    "dual_traversal",
    "evaluate_vortex_far",
    "evaluate_coulomb_far",
    "evaluate_vortex_far_pairs",
    "evaluate_coulomb_far_pairs",
    "CacheStats",
    "TreeState",
    "TreeStateCache",
    "array_fingerprint",
    "SegmentLayout",
    "TraversalLayout",
    "build_traversal_layout",
    "segment_layout",
    "TreeStats",
    "TreeEvaluator",
    "TreeCoulombSolver",
    "MultirateTreeEvaluator",
    "DomainDecomposition",
    "sfc_partition",
    "cover_key_range",
    "branch_counts",
    "partition_box_surface",
]
