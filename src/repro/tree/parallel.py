"""Space-parallel Barnes-Hut evaluation over simulated MPI (paper Fig. 2).

This module *executes* the paper's space dimension: the P_S ranks of one
space communicator (a row of the P_T x P_S grid, see
:class:`repro.parallel.topology.SpaceTimeGrid`) cooperatively evaluate one
tree RHS.  Following PEPC's Warren-Salmon structure (paper Sec. III-A,
Fig. 3), each space rank

1. owns a contiguous segment of the Morton space-filling curve (the
   ``sfc_partition`` convention, snapped to leaf boundaries of the tree so
   segments are whole target groups),
2. derives its *branch nodes* — the minimal set of aligned octree cells
   covering its occupied key interval (:func:`repro.tree.domain.cover_key_range`)
   — and computes their multipole moments (m0/m1/m2 about the cell
   centers) from its local particles alone,
3. exchanges the branch payloads with an ``allgather`` ring collective
   (:func:`repro.parallel.collectives.allgather`), byte-counted into the
   scheduler metrics (``space.branch_bytes{...}``) — the traffic Fig. 5
   shows dominating at small N/P_S,
4. assembles the shared top-of-tree from the received branches (an upward
   multipole translation of every branch to the root center) and verifies
   it against the globally built tree,
5. evaluates far and near interactions *only for its own target groups*
   (a masked view of the global interaction lists driven through the
   batched engine), and
6. allgathers the per-segment RHS so every rank returns the identical
   full field.

Honest simplification versus distributed-memory PEPC: all rank programs
live in one process, so the *globally shared octree* (the structure PEPC
realises by branch exchange plus fetch-on-demand of remote multipoles) is
represented by the in-process :class:`~repro.tree.state.TreeState`.  The
branch exchange is nevertheless performed with real message traffic and
real multipole payloads, and step 4 proves the exchanged data is
sufficient to reconstruct the shared coarse tree — the quantity the
virtual-time model measures.  The arithmetic work of steps 2/5 is
genuinely sharded: each rank computes only its own segment sums and its
own far/near interactions.

Because the engine batches interactions differently for a segment than
for the full particle set (different GEMM paddings, different
``bincount`` accumulation orders), the assembled field matches the serial
:class:`~repro.tree.evaluator.TreeEvaluator` to floating-point roundoff
(relative ~1e-15 per call), not bitwise — the equivalence tests pin this
down at fine and coarse theta.

Fault tolerance: when the grid controller runs with a recovery policy
(``PfasstConfig.recovery != "fail"``), the space communicator handed to
:meth:`SpaceParallelTreeEvaluator.field_program` is an
:class:`~repro.parallel.simmpi.EpochComm` — every tag used here is
transparently namespaced by the current restart attempt, so branch and
RHS traffic from an abandoned attempt can never alias live traffic.
This module needs no changes for that: it addresses the comm it is
given.  See ``docs/resilience.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.parallel import tags
from repro.parallel.collectives import allgather
from repro.parallel.simmpi import VirtualComm
from repro.tree.build import Octree
from repro.tree.domain import cover_key_range
from repro.tree.engine import (
    batched_far_vortex,
    batched_near_vortex,
    build_traversal_layout,
    check_output_buffers,
)
from repro.tree.evaluator import TreeEvaluator, _make_stats
from repro.tree.mac import MACVariant
from repro.tree.morton import cell_of_key, morton_encode, quantize
from repro.tree.multipole import VortexMoments, _segment_sum
from repro.tree.state import TreeState
from repro.tree.traversal import InteractionLists
from repro.vortex.rhs import VelocityField

__all__ = ["SpaceConsistencyError", "SpaceShard", "SpaceParallelTreeEvaluator"]


class SpaceConsistencyError(RuntimeError):
    """The distributed tree view disagrees with the shared global tree."""


class SpaceShard:
    """Leaf-aligned partition of one tree's particle slots over P_S ranks.

    ``bounds[r]:bounds[r+1]`` is rank ``r``'s contiguous range of *sorted*
    particle slots; ``leaf_bounds`` the matching range into ``leaf_order``
    (group indices sorted by their slot start).  Segments are contiguous
    along the Morton curve and aligned to whole leaves, so every target
    group belongs to exactly one rank and equal keys never straddle a
    boundary.
    """

    def __init__(self, p_space: int, bounds: np.ndarray,
                 leaf_bounds: np.ndarray, leaf_order: np.ndarray,
                 keys: np.ndarray) -> None:
        self.p_space = p_space
        self.bounds = bounds
        self.leaf_bounds = leaf_bounds
        self.leaf_order = leaf_order
        #: full-depth Morton keys of the sorted particles, placeholder
        #: stripped — ascending by construction of the tree sort
        self.keys = keys

    def group_mask(self, rank: int, n_groups: int) -> np.ndarray:
        """Boolean mask over group indices owned by ``rank``."""
        mask = np.zeros(n_groups, dtype=bool)
        lo, hi = self.leaf_bounds[rank], self.leaf_bounds[rank + 1]
        mask[self.leaf_order[lo:hi]] = True
        return mask


def _particle_keys(tree: Octree) -> np.ndarray:
    """Full-depth Morton keys of the tree's sorted particles (no placeholder)."""
    keys = morton_encode(
        quantize(tree.positions, tree.cube, tree.depth), tree.depth
    )
    mask = (np.uint64(1) << np.uint64(3 * tree.depth)) - np.uint64(1)
    keys = keys & mask
    if keys.size > 1 and not bool(np.all(keys[1:] >= keys[:-1])):
        raise SpaceConsistencyError(
            "tree particle keys are not ascending; the tree was not built "
            "from a Morton sort over its own cube/depth"
        )
    return keys


def compute_shard(state: TreeState, p_space: int) -> SpaceShard:
    """The (cached) leaf-aligned P_S-way shard of a tree state."""
    shards: Optional[Dict[int, SpaceShard]] = getattr(
        state, "_space_shards", None
    )
    if shards is None:
        shards = {}
        state._space_shards = shards  # type: ignore[attr-defined]
    found = shards.get(p_space)
    if found is not None:
        return found

    tree = state.tree
    groups = state.groups
    n_leaves = int(groups.shape[0])
    if p_space < 1:
        raise ValueError(f"p_space must be >= 1, got {p_space}")
    if p_space > n_leaves:
        raise ValueError(
            f"cannot shard {n_leaves} leaf groups over {p_space} space "
            "ranks; reduce leaf_size or p_space"
        )
    starts = tree.node_start[groups]
    leaf_order = np.argsort(starts, kind="stable").astype(np.int64)
    sorted_starts = starts[leaf_order]

    n = tree.n_particles
    ideal = np.linspace(0, n, p_space + 1)
    leaf_bounds = np.empty(p_space + 1, dtype=np.int64)
    leaf_bounds[0], leaf_bounds[-1] = 0, n_leaves
    for r in range(1, p_space):
        j = int(np.searchsorted(sorted_starts, ideal[r], side="left"))
        if j > 0 and (j == n_leaves
                      or ideal[r] - sorted_starts[j - 1]
                      < sorted_starts[j] - ideal[r]):
            j -= 1
        # keep at least one leaf per rank
        leaf_bounds[r] = min(max(j, leaf_bounds[r - 1] + 1),
                             n_leaves - (p_space - r))
    bounds = np.empty(p_space + 1, dtype=np.int64)
    bounds[0], bounds[-1] = 0, n
    bounds[1:-1] = sorted_starts[leaf_bounds[1:-1]]

    shard = SpaceShard(p_space, bounds, leaf_bounds, leaf_order,
                       _particle_keys(tree))
    shards[p_space] = shard
    return shard


def _sub_lists(lists: InteractionLists, mask: np.ndarray) -> InteractionLists:
    """Interaction lists restricted to the target groups in ``mask``.

    ``far_group`` / ``near_group`` index into the (full) ``groups`` array,
    so masking the pair lists is sufficient — the engine handles groups
    with zero pairs naturally and no index remapping is needed.
    """
    far_keep = mask[lists.far_group]
    near_keep = mask[lists.near_group]
    return InteractionLists(
        groups=lists.groups,
        far_group=lists.far_group[far_keep],
        far_node=lists.far_node[far_keep],
        near_group=lists.near_group[near_keep],
        near_node=lists.near_node[near_keep],
        mac_tests=lists.mac_tests,
    )


def branch_payload(
    tree: Octree,
    shard: SpaceShard,
    charges_sorted: np.ndarray,
    rank: int,
) -> Dict[str, np.ndarray]:
    """Branch cells and multipole payload of ``rank``'s key interval.

    The branch set is :func:`cover_key_range` over the keys the rank's
    particles actually occupy (the PEPC convention); each branch carries
    monopole/dipole/quadrupole moments about its geometric cell center,
    computed from the rank's local particles only.
    """
    depth = tree.depth
    p_lo = int(shard.bounds[rank])
    p_hi = int(shard.bounds[rank + 1])
    keys = shard.keys[p_lo:p_hi]
    cells = cover_key_range(int(keys[0]), int(keys[-1]), depth)
    ckey = np.array([c[0] for c in cells], dtype=np.uint64)
    clevel = np.array([c[1] for c in cells], dtype=np.int64)
    span = np.uint64(1) << (
        np.uint64(3) * (np.uint64(depth) - clevel.astype(np.uint64))
    )
    bs = np.searchsorted(keys, ckey, side="left")
    be = np.searchsorted(keys, ckey + span, side="left")
    counts = (be - bs).astype(np.int64)
    if int(counts.sum()) != p_hi - p_lo:
        raise SpaceConsistencyError(
            f"branch cells of space rank {rank} cover {int(counts.sum())} "
            f"particles, expected {p_hi - p_lo}"
        )

    centers = np.empty((len(cells), 3), dtype=np.float64)
    for lvl in np.unique(clevel):
        sel = clevel == lvl
        key_at_lvl = ckey[sel] >> np.uint64(3 * (depth - int(lvl)))
        c, _ = cell_of_key(key_at_lvl, int(lvl), tree.cube, depth)
        centers[sel] = c

    alpha = charges_sorted[p_lo:p_hi]
    pos = tree.positions[p_lo:p_hi]
    s0 = _segment_sum(alpha, bs, be)
    s1 = _segment_sum(np.einsum("ni,nj->nij", alpha, pos), bs, be)
    s2 = _segment_sum(np.einsum("ni,nj,nk->nijk", alpha, pos, pos), bs, be)
    m0 = s0
    m1 = s1 - np.einsum("bi,bj->bij", s0, centers)
    m2 = 0.5 * (
        s2
        - np.einsum("bij,bk->bijk", s1, centers)
        - np.einsum("bik,bj->bijk", s1, centers)
        + np.einsum("bi,bj,bk->bijk", s0, centers, centers)
    )
    return {
        "key": ckey, "level": clevel, "count": counts, "center": centers,
        "m0": m0, "m1": m1, "m2": m2,
    }


def _payload_nbytes(payload: Dict[str, np.ndarray]) -> int:
    total = 0
    for arr in payload.values():
        total += int(arr.nbytes)
    return total


def assemble_root(
    tree: Octree, branches: List[Dict[str, np.ndarray]]
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Translate every exchanged branch to the root center and sum.

    This is the upward pass of the shared top-of-tree restricted to its
    apex: the returned ``(count, m0, m1, m2)`` must reproduce the global
    root moments if (and only if) the branch exchange delivered a
    complete, disjoint cover of the domain.
    """
    root_center = tree.node_center[0]
    count = 0
    m0 = np.zeros(3)
    m1 = np.zeros((3, 3))
    m2 = np.zeros((3, 3, 3))
    for b in branches:
        s = b["center"] - root_center  # (B, 3)
        count += int(b["count"].sum())
        m0 += b["m0"].sum(axis=0)
        m1 += (b["m1"] + np.einsum("bi,bj->bij", b["m0"], s)).sum(axis=0)
        m2 += (
            b["m2"]
            + 0.5 * np.einsum("bij,bl->bijl", b["m1"], s)
            + 0.5 * np.einsum("bil,bj->bijl", b["m1"], s)
            + 0.5 * np.einsum("bi,bj,bl->bijl", b["m0"], s, s)
        ).sum(axis=0)
    return count, m0, m1, m2


def _verify_top(
    tree: Octree,
    moments: VortexMoments,
    branches: List[Dict[str, np.ndarray]],
) -> None:
    """Check the exchanged branches rebuild the global root moments."""
    count, m0, m1, m2 = assemble_root(tree, branches)
    if count != tree.n_particles:
        raise SpaceConsistencyError(
            f"exchanged branches cover {count} particles, tree holds "
            f"{tree.n_particles}"
        )
    scale = float(moments.abs_charge[0])
    edge = tree.cube.size
    for name, got, ref, atol in (
        ("m0", m0, moments.m0[0], 1e-12 * max(scale, 1e-30)),
        ("m1", m1, moments.m1[0], 1e-12 * max(scale * edge, 1e-30)),
        ("m2", m2, moments.m2[0], 1e-12 * max(scale * edge * edge, 1e-30)),
    ):
        if not bool(np.allclose(got, ref, rtol=1e-9, atol=atol)):
            raise SpaceConsistencyError(
                f"root {name} assembled from exchanged branches deviates "
                f"from the global tree: |diff|={float(np.max(np.abs(got - ref)))!r}"
            )


class SpaceParallelTreeEvaluator(TreeEvaluator):
    """A :class:`TreeEvaluator` whose work is sharded over a space comm.

    Construction and the synchronous :meth:`field` API are identical to
    the serial evaluator (and bitwise-identical in results), so the same
    instance serves both the ``p_space=1`` path and, through
    :meth:`field_program`, the space-parallel path inside a rank program::

        field = yield from evaluator.field_program(
            space, positions, charges, gradient=True
        )

    ``space`` is the row communicator of the P_T x P_S grid (typically a
    :class:`~repro.parallel.simmpi.SubComm` from ``comm.split``); passing
    ``None`` or a size-1 comm falls back to the serial path with zero
    yields, keeping op streams byte-identical.
    """

    def coarsened(
        self, theta: float, mac_variant: Optional[MACVariant] = None
    ) -> "SpaceParallelTreeEvaluator":
        return SpaceParallelTreeEvaluator(
            self.kernel,
            self.sigma,
            theta=theta,
            order=self.order,
            leaf_size=self.leaf_size,
            mac_variant=self.mac_variant if mac_variant is None else mac_variant,
            cache=self.cache,
            batch_budget_bytes=self.batch_budget_bytes,
        )

    # -- the space-parallel pipeline ------------------------------------
    def _segment_layout(
        self,
        state: TreeState,
        lists: InteractionLists,
        shard: SpaceShard,
        rank: int,
    ):
        """Masked interaction lists + engine layout for one segment."""
        key = (float(self.theta), str(self.mac_variant),
               ("seg", shard.p_space, rank))
        found = state.engine_layouts.get(key)
        if found is not None:
            return found
        mask = shard.group_mask(rank, lists.n_groups)
        sub = _sub_lists(lists, mask)
        with self.phases.phase("layout"):
            layout = build_traversal_layout(state.tree, sub)
        found = (sub, layout)
        state.engine_layouts[key] = found
        return found

    def segment_field(
        self,
        positions: np.ndarray,
        charges: np.ndarray,
        rank: int,
        p_space: int,
        gradient: bool = True,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Far/near field of ``rank``'s segment, as compact sorted-order
        arrays ``(vel[p_lo:p_hi], grad[p_lo:p_hi])``.

        This is the *dispatchable* compute unit of the space-parallel
        pipeline: it takes only plain arrays plus scalars (shared-
        memory-friendly, no communicator), rebuilds tree state through
        the evaluator's content-addressed cache (a hit in-process; a
        per-worker warm-up under a process backend), and allocates its
        own output buffers — inputs may arrive as read-only
        shared-memory views.  Both the inline and the dispatched path of
        :meth:`field_program` call exactly this method, so their results
        are bitwise identical.
        """
        state, build_cached = self.cache.state(
            positions, self.leaf_size, self.phases
        )
        tree = state.tree
        moments, moments_cached = state.vortex_moments(charges, self.phases)
        lists, traversal_cached = state.traversal(
            self.theta, self.mac_variant, moments.bmax, self.phases
        )
        shard = compute_shard(state, p_space)
        charges_sorted = charges[tree.order]
        sub, layout = self._segment_layout(state, lists, shard, rank)
        n = positions.shape[0]
        vel = np.zeros((n, 3))
        grad = np.zeros((n, 3, 3)) if gradient else None
        check_output_buffers(vel, grad, n, gradient)
        with self.phases.phase("far_field"):
            batched_far_vortex(
                tree, moments, layout, self.kernel, self.sigma,
                self.order, gradient, vel, grad,
                budget_bytes=self.batch_budget_bytes,
            )
        with self.phases.phase("near_field"):
            batched_near_vortex(
                tree, charges_sorted, layout, self.kernel, self.sigma,
                gradient, self._exclude_zero, vel, grad,
                budget_bytes=self.batch_budget_bytes,
                backend=self.backend,
            )
        self.last_stats = _make_stats(
            tree, sub, build_cached, moments_cached, traversal_cached
        )
        p_lo = int(shard.bounds[rank])
        p_hi = int(shard.bounds[rank + 1])
        return (
            np.ascontiguousarray(vel[p_lo:p_hi]),
            np.ascontiguousarray(grad[p_lo:p_hi]) if gradient else None,
        )

    def field_program(
        self,
        space: Optional[VirtualComm],
        positions: np.ndarray,
        charges: np.ndarray,
        gradient: bool = True,
        dispatch=None,
        payload_key: Optional[str] = None,
    ) -> Generator[Any, Any, VelocityField]:
        """Space-collective field evaluation; returns the full field.

        Every rank of ``space`` must drive this generator at the same
        call site (it is a collective: two allgathers plus annotations).
        The returned :class:`VelocityField` covers *all* particles and is
        identical on every space rank.

        With ``dispatch`` and ``payload_key`` set (by
        ``VortexProblem.rhs_program`` when an execution backend is
        attached), the far/near GEMM segment — :meth:`segment_field` —
        is yielded as a :class:`~repro.parallel.executor.Compute`
        operation instead of running inline; the branch exchange, the
        top-of-tree verification and the RHS allgather stay in the event
        loop either way.
        """
        if space is None or space.size == 1:
            return self.field(positions, charges, gradient=gradient)

        self.calls += 1
        rank, p_space = space.rank, space.size
        # The branch exchange needs the tree and moments; the interaction
        # lists and segment layout are (re)derived inside segment_field —
        # a cache hit inline, a per-worker warm-up under a process backend.
        state, _ = self.cache.state(positions, self.leaf_size, self.phases)
        tree = state.tree
        moments, _ = state.vortex_moments(charges, self.phases)
        shard = compute_shard(state, p_space)
        charges_sorted = charges[tree.order]

        # ---- branch exchange (paper Fig. 3 / Fig. 5) -------------------
        yield space.annotate("begin:space:branch-exchange")
        payload = branch_payload(tree, shard, charges_sorted, rank)
        nbytes = _payload_nbytes(payload)
        metrics = space.metrics
        wr = space.world_rank
        metrics.counter("space.branch_bytes").inc(nbytes)
        metrics.counter("space.branch_bytes", rank=wr).inc(nbytes)
        metrics.counter("space.branch_cells", rank=wr).inc(
            int(payload["key"].shape[0])
        )
        branches = yield from allgather(space, payload, tag=tags.SPACE_BRX)
        _verify_top(tree, moments, branches)
        yield space.annotate("end:space:branch-exchange")

        # ---- local far/near evaluation ---------------------------------
        yield space.annotate("begin:space:compute")
        n = positions.shape[0]
        if dispatch is not None and payload_key is not None:
            from repro.parallel.executor import Compute, ComputeTask

            seg = yield Compute(ComputeTask(
                payload_key, "field_segment",
                arrays=(positions, charges),
                tail=(rank, p_space, gradient),
            ))
        else:
            seg = self.segment_field(
                positions, charges, rank, p_space, gradient=gradient
            )
        yield space.annotate("end:space:compute")

        # ---- allgather the RHS segments --------------------------------
        yield space.annotate("begin:space:rhs-allgather")
        seg_bytes = int(seg[0].nbytes + (seg[1].nbytes if gradient else 0))
        metrics.counter("space.rhs_bytes", rank=wr).inc(seg_bytes)
        segments = yield from allgather(space, seg, tag=tags.SPACE_RHS)
        vel_sorted = np.empty((n, 3))
        grad_sorted = np.empty((n, 3, 3)) if gradient else None
        for r in range(p_space):
            a, b = int(shard.bounds[r]), int(shard.bounds[r + 1])
            vel_sorted[a:b] = segments[r][0]
            if gradient:
                grad_sorted[a:b] = segments[r][1]
        yield space.annotate("end:space:rhs-allgather")

        # scatter from Morton order back to caller order
        out_v = np.empty_like(vel_sorted)
        out_v[tree.order] = vel_sorted
        out_g = None
        if gradient:
            out_g = np.empty_like(grad_sorted)
            out_g[tree.order] = grad_sorted
        return VelocityField(out_v, out_g)
