"""Barnes-Hut field evaluators (the "PEPC" front end).

:class:`TreeEvaluator` implements the vortex-method
:class:`~repro.vortex.problem.FieldEvaluator` interface in
``O(N log N)``: build the oct-tree, compute multipole moments, run the
group-collective dual traversal, then evaluate far interactions by
multipole expansion and near interactions by direct summation.

Both summation phases run through the batched engine
(:mod:`repro.tree.engine`): interaction lists are expanded into flat
(particle, node) / (particle, particle) pair streams and evaluated in
memory-budgeted chunks, so Python-level iteration no longer scales with
the number of target groups.  Tree build, moments and traversal are
obtained through a :class:`~repro.tree.state.TreeStateCache` keyed by a
content fingerprint of the particle arrays: repeated RHS evaluations at
the same state (SDC node-0 re-evaluations, FAS restriction) skip straight
to the summation phases.

The multipole acceptance parameter ``theta`` controls the accuracy/cost
trade-off; PFASST's particle-based coarsening (the paper's contribution)
is simply two ``TreeEvaluator`` instances sharing everything but ``theta``
(0.3 fine / 0.6 coarse in the paper's runs).  Use :meth:`coarsened` to
derive the coarse evaluator: it shares the fine evaluator's state cache,
so the pair shares one tree and one moment pass per particle
configuration and re-runs only its own traversal.

:class:`TreeCoulombSolver` provides the scalar-charge (Coulomb/gravity)
counterpart, mirroring PEPC's multi-purpose design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.sanitize import boundary
from repro.backends import KernelBackend, get_backend
from repro.tree.build import Octree
from repro.tree.engine import (
    TraversalLayout,
    batched_far_coulomb,
    batched_far_vortex,
    batched_near_coulomb,
    batched_near_vortex,
    build_traversal_layout,
)
from repro.obs.metrics import get_metrics
from repro.obs.timing import TimingRegistry
from repro.tree.mac import MACVariant
from repro.tree.profiles import supports_multipoles
from repro.tree.state import CacheStats, TreeState, TreeStateCache
from repro.tree.traversal import InteractionLists
from repro.utils.validation import check_positive
from repro.vortex.kernels import SingularKernel, SmoothingKernel, get_kernel
from repro.vortex.problem import FieldEvaluator
from repro.vortex.rhs import VelocityField

__all__ = ["TreeStats", "TreeEvaluator", "TreeCoulombSolver"]


@dataclass
class TreeStats:
    """Work statistics of the most recent tree evaluation."""

    n_particles: int = 0
    n_nodes: int = 0
    n_groups: int = 0
    mac_tests: int = 0
    far_pairs: int = 0
    near_pairs: int = 0
    far_interactions: int = 0
    near_interactions: int = 0
    #: which pipeline stages were served from the state cache
    build_cached: bool = False
    moments_cached: bool = False
    traversal_cached: bool = False

    @property
    def interactions_per_particle(self) -> float:
        if self.n_particles == 0:
            return 0.0
        return (self.far_interactions + self.near_interactions) / self.n_particles


def _make_stats(
    tree: Octree,
    lists: InteractionLists,
    build_cached: bool,
    moments_cached: bool,
    traversal_cached: bool,
) -> TreeStats:
    stats = TreeStats(
        n_particles=tree.n_particles,
        n_nodes=tree.n_nodes,
        n_groups=lists.n_groups,
        mac_tests=lists.mac_tests,
        far_pairs=int(lists.far_group.size),
        near_pairs=int(lists.near_group.size),
        far_interactions=lists.far_interaction_count(tree),
        near_interactions=lists.near_interaction_count(tree),
        build_cached=build_cached,
        moments_cached=moments_cached,
        traversal_cached=traversal_cached,
    )
    m = get_metrics()
    if m.enabled:
        m.counter("tree.evaluations").inc()
        m.counter("tree.mac_tests").inc(stats.mac_tests)
        m.counter("tree.far_pairs").inc(stats.far_pairs)
        m.counter("tree.near_pairs").inc(stats.near_pairs)
        m.histogram("tree.interactions_per_particle").observe(
            stats.interactions_per_particle
        )
    return stats


def _engine_layout(
    state: TreeState,
    lists: InteractionLists,
    theta: float,
    variant: str,
    phases: TimingRegistry,
) -> TraversalLayout:
    """Per-traversal engine layout, cached on the state object."""
    key = (float(theta), str(variant))
    layout = state.engine_layouts.get(key)
    if layout is None:
        with phases.phase("layout"):
            layout = build_traversal_layout(state.tree, lists)
        state.engine_layouts[key] = layout
    return layout


class TreeEvaluator(FieldEvaluator):
    """Barnes-Hut evaluator for the vortex RHS.

    Parameters
    ----------
    kernel :
        Smoothing kernel (must be algebraic or singular — those admit
        exact multipole radial chains).
    sigma :
        Core size.
    theta :
        Multipole acceptance parameter; larger = faster and less accurate.
    order :
        Multipole order: 0 monopole, 1 dipole, 2 quadrupole (default).
    leaf_size :
        Particles per leaf; leaves double as traversal target groups.
    mac_variant :
        ``"bh"`` (classical, the paper's choice) or ``"bmax"``.
    cache :
        :class:`~repro.tree.state.TreeStateCache` for tree/moment/traversal
        reuse.  Pass a shared instance to let several evaluators (e.g. a
        fine/coarse theta pair) share trees and moments; by default each
        evaluator owns a private cache (still reused across its own calls).
    batch_budget_bytes :
        Approximate temporary-memory budget per engine chunk; ``None``
        uses the engine default (64 MiB).
    backend :
        Kernel-execution backend for the batched far/near passes — a
        registry name (``"numpy"``, ``"threaded"``, ``"cupy"``), an
        already-resolved :class:`~repro.backends.KernelBackend`, or
        ``None`` to resolve via the ``REPRO_BACKEND`` environment
        variable (default ``"numpy"``).  Resolution is eager, so an
        unavailable backend raises
        :class:`~repro.backends.BackendUnavailableError` here rather
        than mid-run.  The resolved backend pickles as its name and is
        re-resolved inside :class:`~repro.parallel.executor.ProcessExecutor`
        workers.  See ``docs/backends.md`` for per-backend precision
        and determinism guarantees.
    """

    def __init__(
        self,
        kernel: SmoothingKernel | str,
        sigma: float,
        theta: float = 0.3,
        order: int = 2,
        leaf_size: int = 32,
        mac_variant: MACVariant = "bh",
        cache: Optional[TreeStateCache] = None,
        batch_budget_bytes: Optional[int] = None,
        backend: "KernelBackend | str | None" = None,
    ) -> None:
        super().__init__()
        self.kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
        if not supports_multipoles(self.kernel):
            raise ValueError(
                f"kernel {self.kernel.name!r} lacks an exact multipole "
                "expansion; use DirectEvaluator or an algebraic kernel"
            )
        self.sigma = check_positive("sigma", sigma)
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta}")
        self.theta = float(theta)
        if order not in (0, 1, 2):
            raise ValueError(f"order must be 0, 1 or 2, got {order}")
        self.order = order
        self.leaf_size = int(leaf_size)
        self.mac_variant: MACVariant = mac_variant
        self.cache = cache if cache is not None else TreeStateCache()
        self.batch_budget_bytes = batch_budget_bytes
        self.backend = get_backend(backend)
        if self.backend.device == "gpu" and not self.kernel.xp_generic:
            raise ValueError(
                f"kernel {self.kernel.name!r} is not array-namespace "
                f"generic and cannot run on backend "
                f"{self.backend.name!r}; use an algebraic or singular "
                "kernel, or a CPU backend"
            )
        self.phases = TimingRegistry()
        self.last_stats = TreeStats()
        self._exclude_zero = (
            isinstance(self.kernel, SingularKernel)
            and self.kernel.softening == 0.0
        )

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the underlying state cache."""
        return self.cache.stats

    def coarsened(
        self, theta: float, mac_variant: Optional[MACVariant] = None
    ) -> "TreeEvaluator":
        """A theta-coarsened evaluator sharing this one's state cache.

        The returned evaluator reuses every tree build and moment pass of
        this evaluator (and vice versa) and only runs its own traversal —
        the paper's fine/coarse pair for the price of one tree pipeline.
        """
        return TreeEvaluator(
            self.kernel,
            self.sigma,
            theta=theta,
            order=self.order,
            leaf_size=self.leaf_size,
            mac_variant=self.mac_variant if mac_variant is None else mac_variant,
            cache=self.cache,
            batch_budget_bytes=self.batch_budget_bytes,
            backend=self.backend,
        )

    @boundary("tree_evaluate", arrays=[
        ("positions", (None, 3)), ("charges", (None, 3)),
    ])
    def _evaluate(
        self,
        positions: np.ndarray,
        charges: np.ndarray,
        gradient: bool,
        include_far: bool = True,
    ) -> VelocityField:
        state, build_cached = self.cache.state(
            positions, self.leaf_size, self.phases
        )
        tree = state.tree
        moments, moments_cached = state.vortex_moments(charges, self.phases)
        lists, traversal_cached = state.traversal(
            self.theta, self.mac_variant, moments.bmax, self.phases
        )
        layout = _engine_layout(
            state, lists, self.theta, self.mac_variant, self.phases
        )

        n = positions.shape[0]
        vel = np.zeros((n, 3))
        grad = np.zeros((n, 3, 3)) if gradient else None

        if include_far:
            with self.phases.phase("far_field"):
                batched_far_vortex(
                    tree, moments, layout, self.kernel, self.sigma,
                    self.order, gradient, vel, grad,
                    budget_bytes=self.batch_budget_bytes,
                )
        with self.phases.phase("near_field"):
            batched_near_vortex(
                tree, charges[tree.order], layout, self.kernel, self.sigma,
                gradient, self._exclude_zero, vel, grad,
                budget_bytes=self.batch_budget_bytes,
                backend=self.backend,
            )

        self.last_stats = _make_stats(
            tree, lists, build_cached, moments_cached, traversal_cached
        )
        # scatter from Morton order back to caller order
        out_v = np.empty_like(vel)
        out_v[tree.order] = vel
        out_g = None
        if gradient:
            out_g = np.empty_like(grad)
            out_g[tree.order] = grad
        return VelocityField(out_v, out_g)


class TreeCoulombSolver:
    """Barnes-Hut potential/field solver for scalar charges.

    Mirrors PEPC's original Coulomb/gravity mode; used by the Fig. 5-style
    scaling benchmark ("homogeneous neutral Coulomb system").  Runs on the
    same batched engine and state cache as :class:`TreeEvaluator`, and
    accepts the same ``backend`` selector — the scalar-charge pair
    streams are chunked over disjoint slot ranges, so the ``threaded``
    backend runs them concurrently and bitwise-identically (device
    backends keep these streams on the host; see ``docs/backends.md``).
    """

    def __init__(
        self,
        theta: float = 0.6,
        order: int = 2,
        leaf_size: int = 32,
        softening: float = 0.0,
        mac_variant: MACVariant = "bh",
        cache: Optional[TreeStateCache] = None,
        batch_budget_bytes: Optional[int] = None,
        backend: "KernelBackend | str | None" = None,
    ) -> None:
        self.kernel = SingularKernel(softening=softening)
        self.theta = float(theta)
        self.order = order
        self.leaf_size = int(leaf_size)
        self.mac_variant: MACVariant = mac_variant
        self.cache = cache if cache is not None else TreeStateCache()
        self.batch_budget_bytes = batch_budget_bytes
        self.backend = get_backend(backend)
        self.phases = TimingRegistry()
        self.last_stats = TreeStats()
        # unsoftened coincident pairs diverge and are excluded, exactly as
        # in the direct reference; softened ones contribute 1/(4 pi eps)
        self._exclude_zero = self.kernel.softening == 0.0

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the underlying state cache."""
        return self.cache.stats

    @boundary("tree_coulomb", arrays=[
        ("positions", (None, 3)), ("charges", (None,)),
    ])
    def compute(
        self, positions: np.ndarray, charges: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(potential, field)`` at every particle position."""
        state, build_cached = self.cache.state(
            positions, self.leaf_size, self.phases
        )
        tree = state.tree
        moments, moments_cached = state.coulomb_moments(charges, self.phases)
        lists, traversal_cached = state.traversal(
            self.theta, self.mac_variant, moments.bmax, self.phases
        )
        layout = _engine_layout(
            state, lists, self.theta, self.mac_variant, self.phases
        )

        n = positions.shape[0]
        phi = np.zeros(n)
        field = np.zeros((n, 3))

        with self.phases.phase("far_field"):
            batched_far_coulomb(
                tree, moments, layout, self.kernel, 1.0, self.order,
                phi, field, budget_bytes=self.batch_budget_bytes,
                backend=self.backend,
            )
        with self.phases.phase("near_field"):
            batched_near_coulomb(
                tree, charges[tree.order], layout, self.kernel, 1.0,
                self._exclude_zero, phi, field,
                budget_bytes=self.batch_budget_bytes,
                backend=self.backend,
            )

        self.last_stats = _make_stats(
            tree, lists, build_cached, moments_cached, traversal_cached
        )
        out_phi = np.empty_like(phi)
        out_phi[tree.order] = phi
        out_field = np.empty_like(field)
        out_field[tree.order] = field
        return out_phi, out_field
