"""Barnes-Hut field evaluators (the "PEPC" front end).

:class:`TreeEvaluator` implements the vortex-method
:class:`~repro.vortex.problem.FieldEvaluator` interface in
``O(N log N)``: build the oct-tree, compute multipole moments, run the
group-collective dual traversal, then evaluate far interactions by
multipole expansion and near interactions by direct summation.

The multipole acceptance parameter ``theta`` controls the accuracy/cost
trade-off; PFASST's particle-based coarsening (the paper's contribution)
is simply two ``TreeEvaluator`` instances sharing everything but ``theta``
(0.3 fine / 0.6 coarse in the paper's runs).

:class:`TreeCoulombSolver` provides the scalar-charge (Coulomb/gravity)
counterpart, mirroring PEPC's multi-purpose design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.tree.build import Octree, build_octree
from repro.tree.evaluate import evaluate_coulomb_far, evaluate_vortex_far
from repro.tree.mac import MACVariant
from repro.tree.multipole import (
    compute_coulomb_moments,
    compute_vortex_moments,
)
from repro.tree.profiles import supports_multipoles
from repro.tree.traversal import InteractionLists, dual_traversal
from repro.utils.timing import TimingRegistry
from repro.utils.validation import check_positive
from repro.vortex.kernels import SingularKernel, SmoothingKernel, get_kernel
from repro.vortex.problem import FieldEvaluator
from repro.vortex.rhs import VelocityField, biot_savart_direct

__all__ = ["TreeStats", "TreeEvaluator", "TreeCoulombSolver"]


@dataclass
class TreeStats:
    """Work statistics of the most recent tree evaluation."""

    n_particles: int = 0
    n_nodes: int = 0
    n_groups: int = 0
    mac_tests: int = 0
    far_pairs: int = 0
    near_pairs: int = 0
    far_interactions: int = 0
    near_interactions: int = 0

    @property
    def interactions_per_particle(self) -> float:
        if self.n_particles == 0:
            return 0.0
        return (self.far_interactions + self.near_interactions) / self.n_particles


def _group_slices(sorted_by: np.ndarray, n_groups: int) -> Tuple[np.ndarray, np.ndarray]:
    """Start offsets per group in an array sorted by group index."""
    starts = np.searchsorted(sorted_by, np.arange(n_groups), side="left")
    ends = np.searchsorted(sorted_by, np.arange(n_groups), side="right")
    return starts, ends


class TreeEvaluator(FieldEvaluator):
    """Barnes-Hut evaluator for the vortex RHS.

    Parameters
    ----------
    kernel :
        Smoothing kernel (must be algebraic or singular — those admit
        exact multipole radial chains).
    sigma :
        Core size.
    theta :
        Multipole acceptance parameter; larger = faster and less accurate.
    order :
        Multipole order: 0 monopole, 1 dipole, 2 quadrupole (default).
    leaf_size :
        Particles per leaf; leaves double as traversal target groups.
    mac_variant :
        ``"bh"`` (classical, the paper's choice) or ``"bmax"``.
    """

    def __init__(
        self,
        kernel: SmoothingKernel | str,
        sigma: float,
        theta: float = 0.3,
        order: int = 2,
        leaf_size: int = 32,
        mac_variant: MACVariant = "bh",
    ) -> None:
        super().__init__()
        self.kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
        if not supports_multipoles(self.kernel):
            raise ValueError(
                f"kernel {self.kernel.name!r} lacks an exact multipole "
                "expansion; use DirectEvaluator or an algebraic kernel"
            )
        self.sigma = check_positive("sigma", sigma)
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta}")
        self.theta = float(theta)
        if order not in (0, 1, 2):
            raise ValueError(f"order must be 0, 1 or 2, got {order}")
        self.order = order
        self.leaf_size = int(leaf_size)
        self.mac_variant: MACVariant = mac_variant
        self.phases = TimingRegistry()
        self.last_stats = TreeStats()
        self._exclude_zero = (
            isinstance(self.kernel, SingularKernel)
            and self.kernel.softening == 0.0
        )

    def _evaluate(
        self, positions: np.ndarray, charges: np.ndarray, gradient: bool
    ) -> VelocityField:
        with self.phases.phase("tree_build"):
            tree = build_octree(positions, leaf_size=self.leaf_size)
        with self.phases.phase("moments"):
            moments = compute_vortex_moments(tree, charges)
        with self.phases.phase("traverse"):
            lists = dual_traversal(
                tree, self.theta, node_bmax=moments.bmax,
                variant=self.mac_variant,
            )
        charges_sorted = charges[tree.order]
        n = positions.shape[0]
        vel = np.zeros((n, 3))
        grad = np.zeros((n, 3, 3)) if gradient else None

        far_order = np.argsort(lists.far_group, kind="stable")
        far_group = lists.far_group[far_order]
        far_node = lists.far_node[far_order]
        near_order = np.argsort(lists.near_group, kind="stable")
        near_group = lists.near_group[near_order]
        near_node = lists.near_node[near_order]
        fstart, fend = _group_slices(far_group, lists.n_groups)
        nstart, nend = _group_slices(near_group, lists.n_groups)

        with self.phases.phase("far_field"):
            for gi in range(lists.n_groups):
                leaf = lists.groups[gi]
                lo, hi = tree.node_start[leaf], tree.node_end[leaf]
                nodes = far_node[fstart[gi]:fend[gi]]
                if nodes.size == 0:
                    continue
                u, g = evaluate_vortex_far(
                    tree.positions[lo:hi],
                    moments.center[nodes],
                    moments.m0[nodes],
                    moments.m1[nodes],
                    moments.m2[nodes],
                    self.kernel,
                    self.sigma,
                    order=self.order,
                    gradient=gradient,
                )
                vel[lo:hi] += u
                if gradient:
                    grad[lo:hi] += g

        with self.phases.phase("near_field"):
            for gi in range(lists.n_groups):
                leaf = lists.groups[gi]
                lo, hi = tree.node_start[leaf], tree.node_end[leaf]
                src_leaves = near_node[nstart[gi]:nend[gi]]
                if src_leaves.size == 0:
                    continue
                seg = [
                    slice(tree.node_start[s], tree.node_end[s])
                    for s in src_leaves
                ]
                src_pos = np.concatenate([tree.positions[s] for s in seg])
                src_ch = np.concatenate([charges_sorted[s] for s in seg])
                field = biot_savart_direct(
                    tree.positions[lo:hi],
                    src_pos,
                    src_ch,
                    self.kernel,
                    self.sigma,
                    gradient=gradient,
                    exclude_zero=self._exclude_zero,
                )
                vel[lo:hi] += field.velocity
                if gradient:
                    grad[lo:hi] += field.gradient

        self.last_stats = TreeStats(
            n_particles=n,
            n_nodes=tree.n_nodes,
            n_groups=lists.n_groups,
            mac_tests=lists.mac_tests,
            far_pairs=int(lists.far_group.size),
            near_pairs=int(lists.near_group.size),
            far_interactions=lists.far_interaction_count(tree),
            near_interactions=lists.near_interaction_count(tree),
        )
        # scatter from Morton order back to caller order
        out_v = np.empty_like(vel)
        out_v[tree.order] = vel
        out_g = None
        if gradient:
            out_g = np.empty_like(grad)
            out_g[tree.order] = grad
        return VelocityField(out_v, out_g)


class TreeCoulombSolver:
    """Barnes-Hut potential/field solver for scalar charges.

    Mirrors PEPC's original Coulomb/gravity mode; used by the Fig. 5-style
    scaling benchmark ("homogeneous neutral Coulomb system").
    """

    def __init__(
        self,
        theta: float = 0.6,
        order: int = 2,
        leaf_size: int = 32,
        softening: float = 0.0,
        mac_variant: MACVariant = "bh",
    ) -> None:
        self.kernel = SingularKernel(softening=softening)
        self.theta = float(theta)
        self.order = order
        self.leaf_size = int(leaf_size)
        self.mac_variant: MACVariant = mac_variant
        self.phases = TimingRegistry()
        self.last_stats = TreeStats()

    def compute(
        self, positions: np.ndarray, charges: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(potential, field)`` at every particle position."""
        with self.phases.phase("tree_build"):
            tree = build_octree(positions, leaf_size=self.leaf_size)
        with self.phases.phase("moments"):
            moments = compute_coulomb_moments(tree, charges)
        with self.phases.phase("traverse"):
            lists = dual_traversal(
                tree, self.theta, node_bmax=moments.bmax,
                variant=self.mac_variant,
            )
        q_sorted = charges[tree.order]
        n = positions.shape[0]
        phi = np.zeros(n)
        field = np.zeros((n, 3))

        far_order = np.argsort(lists.far_group, kind="stable")
        far_group = lists.far_group[far_order]
        far_node = lists.far_node[far_order]
        near_order = np.argsort(lists.near_group, kind="stable")
        near_group = lists.near_group[near_order]
        near_node = lists.near_node[near_order]
        fstart, fend = _group_slices(far_group, lists.n_groups)
        nstart, nend = _group_slices(near_group, lists.n_groups)

        inv_four_pi = 1.0 / (4.0 * np.pi)
        with self.phases.phase("far_field"):
            for gi in range(lists.n_groups):
                leaf = lists.groups[gi]
                lo, hi = tree.node_start[leaf], tree.node_end[leaf]
                nodes = far_node[fstart[gi]:fend[gi]]
                if nodes.size == 0:
                    continue
                p, e = evaluate_coulomb_far(
                    tree.positions[lo:hi],
                    moments.center[nodes],
                    moments.m0[nodes],
                    moments.m1[nodes],
                    moments.m2[nodes],
                    self.kernel,
                    1.0,
                    order=self.order,
                )
                phi[lo:hi] += p
                field[lo:hi] += e

        with self.phases.phase("near_field"):
            for gi in range(lists.n_groups):
                leaf = lists.groups[gi]
                lo, hi = tree.node_start[leaf], tree.node_end[leaf]
                src_leaves = near_node[nstart[gi]:nend[gi]]
                if src_leaves.size == 0:
                    continue
                seg = [
                    slice(tree.node_start[s], tree.node_end[s])
                    for s in src_leaves
                ]
                src_pos = np.concatenate([tree.positions[s] for s in seg])
                src_q = np.concatenate([q_sorted[s] for s in seg])
                r = tree.positions[lo:hi, None, :] - src_pos[None, :, :]
                d2 = np.einsum("tsk,tsk->ts", r, r) + self.kernel.softening**2
                with np.errstate(divide="ignore", invalid="ignore"):
                    inv = np.where(d2 > 0.0, 1.0 / np.sqrt(d2), 0.0)
                phi[lo:hi] += inv_four_pi * (inv @ src_q)
                f3 = inv**3 * src_q[None, :]
                field[lo:hi] += inv_four_pi * np.einsum("ts,tsk->tk", f3, r)

        self.last_stats = TreeStats(
            n_particles=n,
            n_nodes=tree.n_nodes,
            n_groups=lists.n_groups,
            mac_tests=lists.mac_tests,
            far_pairs=int(lists.far_group.size),
            near_pairs=int(lists.near_group.size),
            far_interactions=lists.far_interaction_count(tree),
            near_interactions=lists.near_interaction_count(tree),
        )
        out_phi = np.empty_like(phi)
        out_phi[tree.order] = phi
        out_field = np.empty_like(field)
        out_field[tree.order] = field
        return out_phi, out_field
