"""Linear oct-tree construction over Morton-sorted particles.

The classic Barnes-Hut recursion (paper Fig. 3) is realised without per-node
Python recursion: particles are sorted by Morton key once, and the tree is
built breadth-first.  At each level every overfull node is split into its
up-to-8 children with a single vectorised ``searchsorted`` over the key
prefixes, so Python-level iteration is bounded by the tree depth (<= 21),
not the particle count.

Nodes are stored in structure-of-arrays form, BFS (level-contiguous) order,
which later lets the multipole upward pass run level-by-level vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.tree.morton import (
    MAX_DEPTH,
    BoundingCube,
    morton_encode,
    quantize,
)
from repro.utils.validation import check_array

__all__ = ["Octree", "build_octree"]


@dataclass
class Octree:
    """Linear oct-tree.

    All node arrays are indexed by node id in BFS order (root = 0).
    ``order`` maps sorted-particle slots back to original particle indices:
    ``positions_sorted = positions[order]``; node ``[start, end)`` ranges
    refer to the *sorted* ordering.
    """

    cube: BoundingCube
    depth: int
    #: permutation: sorted slot -> original particle index
    order: np.ndarray
    #: particle positions in sorted order (kept for near-field evaluation)
    positions: np.ndarray

    # node arrays (BFS order)
    node_level: np.ndarray
    node_start: np.ndarray
    node_end: np.ndarray
    node_parent: np.ndarray
    node_first_child: np.ndarray  # -1 for leaves
    node_n_children: np.ndarray
    node_center: np.ndarray  # geometric cell centers (n_nodes, 3)
    node_size: np.ndarray  # cell edge lengths
    #: first node id of each level (length = max_level + 2, cumulative)
    level_offsets: np.ndarray

    @property
    def n_nodes(self) -> int:
        return self.node_level.shape[0]

    @property
    def n_particles(self) -> int:
        return self.order.shape[0]

    @property
    def n_levels(self) -> int:
        return self.level_offsets.shape[0] - 1

    def is_leaf(self, node: int | np.ndarray) -> np.ndarray:
        return self.node_first_child[node] < 0

    def leaves(self) -> np.ndarray:
        """Node ids of all leaves."""
        return np.nonzero(self.node_first_child < 0)[0]

    def node_count(self, node: int | np.ndarray) -> np.ndarray:
        return self.node_end[node] - self.node_start[node]

    def children(self, node: int) -> np.ndarray:
        """Node ids of the children of ``node`` (empty for leaves)."""
        first = self.node_first_child[node]
        if first < 0:
            return np.empty(0, dtype=np.int64)
        return np.arange(first, first + self.node_n_children[node])

    def particles_of(self, node: int) -> np.ndarray:
        """Original indices of the particles inside ``node``."""
        return self.order[self.node_start[node]: self.node_end[node]]

    def validate(self) -> None:
        """Structural invariants; raises ValueError on violation.

        Explicit raises (not ``assert``) so the checks survive
        ``python -O`` — see repro-lint rule RPR005.
        """
        def _fail(node: int, what: str) -> None:
            raise ValueError(
                f"octree invariant violated at node {node}: {what}"
            )

        if not (self.node_start[0] == 0
                and self.node_end[0] == self.n_particles):
            _fail(0, "root must span all particles")
        for node in range(self.n_nodes):
            first = self.node_first_child[node]
            if first >= 0:
                kids = self.children(node)
                if not np.all(self.node_parent[kids] == node):
                    _fail(node, "children disagree on their parent")
                if self.node_start[kids[0]] != self.node_start[node]:
                    _fail(node, "first child must start at the node start")
                if self.node_end[kids[-1]] != self.node_end[node]:
                    _fail(node, "last child must end at the node end")
                if not np.all(
                    self.node_end[kids[:-1]] == self.node_start[kids[1:]]
                ):
                    _fail(node, "sibling particle ranges must be contiguous")
                if not np.all(
                    self.node_level[kids] == self.node_level[node] + 1
                ):
                    _fail(node, "children must sit one level deeper")


def build_octree(
    positions: np.ndarray,
    leaf_size: int = 16,
    depth: int = MAX_DEPTH,
    cube: Optional[BoundingCube] = None,
) -> Octree:
    """Build the oct-tree of a particle set.

    Parameters
    ----------
    positions : (N, 3)
        Particle positions.
    leaf_size :
        Maximum number of particles per leaf.  PEPC subdivides down to one
        particle per box; larger leaves trade tree depth for wider
        vectorised near-field batches (a better fit for NumPy).
    depth :
        Maximum subdivision depth (key resolution).
    cube :
        Optional pre-computed bounding cube (e.g. a globally agreed domain
        in the parallel setting).
    """
    positions = check_array("positions", positions, shape=(None, 3), dtype=np.float64)
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
    n = positions.shape[0]
    if n == 0:
        raise ValueError("cannot build a tree over zero particles")
    cube = cube or BoundingCube.of_points(positions)

    keys = morton_encode(quantize(positions, cube, depth), depth)
    order = np.argsort(keys, kind="stable").astype(np.int64)
    keys_sorted = keys[order]
    pos_sorted = positions[order]

    # per-level growable node storage
    levels: List[int] = [0]
    starts: List[int] = [0]
    ends: List[int] = [n]
    parents: List[int] = [-1]
    first_child: List[int] = []
    n_children: List[int] = []
    cell_key: List[np.uint64] = [np.uint64(1)]  # level-truncated key w/ placeholder

    level_offsets = [0, 1]
    frontier = np.array([0], dtype=np.int64)  # node ids of current level

    for level in range(depth):
        counts = np.array([ends[i] - starts[i] for i in frontier])
        split_mask = counts > leaf_size
        # identical keys cannot be split further once max depth is reached
        to_split = frontier[split_mask]
        for i in frontier:
            first_child.append(-1)
            n_children.append(0)
        if to_split.size == 0:
            level_offsets.append(len(levels))
            break

        shift = np.uint64(3 * (depth - (level + 1)))
        new_frontier: List[int] = []
        for node in to_split:
            lo, hi = starts[node], ends[node]
            seg = keys_sorted[lo:hi] >> shift
            # boundaries of the 8 possible children inside this segment
            parent_key = np.uint64(cell_key[node])
            child_keys = (parent_key << np.uint64(3)) + np.arange(8, dtype=np.uint64)
            bounds = lo + np.searchsorted(seg, child_keys, side="left")
            bounds = np.append(bounds, hi)
            widths = np.diff(bounds)
            present = np.nonzero(widths > 0)[0]
            if present.size == 1 and widths[present[0]] == hi - lo and level + 1 == depth:
                continue  # degenerate: all particles share the full key
            first_child[node] = len(levels)
            n_children[node] = int(present.size)
            for ci in present:
                node_id = len(levels)
                levels.append(level + 1)
                starts.append(int(bounds[ci]))
                ends.append(int(bounds[ci + 1]))
                parents.append(int(node))
                cell_key.append(np.uint64(child_keys[ci]))
                new_frontier.append(node_id)
        if not new_frontier:
            level_offsets.append(len(levels))
            break
        frontier = np.array(new_frontier, dtype=np.int64)
        level_offsets.append(len(levels))
    else:
        # loop exhausted depth levels; close the offsets
        if level_offsets[-1] != len(levels):
            level_offsets.append(len(levels))
        for _ in range(len(levels) - len(first_child)):
            first_child.append(-1)
            n_children.append(0)

    n_nodes = len(levels)
    node_level = np.array(levels, dtype=np.int64)
    # geometric cells of the nodes
    from repro.tree.morton import cell_of_key

    node_center = np.empty((n_nodes, 3), dtype=np.float64)
    node_size = np.empty(n_nodes, dtype=np.float64)
    cell_key_arr = np.array(cell_key, dtype=np.uint64)
    for lvl in range(len(level_offsets) - 1):
        sel = slice(level_offsets[lvl], level_offsets[lvl + 1])
        if sel.start == sel.stop:
            continue
        centers, edge = cell_of_key(cell_key_arr[sel], lvl, cube, depth)
        node_center[sel] = centers
        node_size[sel] = edge

    tree = Octree(
        cube=cube,
        depth=depth,
        order=order,
        positions=pos_sorted,
        node_level=node_level,
        node_start=np.array(starts, dtype=np.int64),
        node_end=np.array(ends, dtype=np.int64),
        node_parent=np.array(parents, dtype=np.int64),
        node_first_child=np.array(first_child, dtype=np.int64),
        node_n_children=np.array(n_children, dtype=np.int64),
        node_center=node_center,
        node_size=node_size,
        level_offsets=np.array(level_offsets, dtype=np.int64),
    )
    return tree
