"""Radial derivative chains for multipole expansions of regularised kernels.

The multipole expansion of the induced field needs the derivative tensors
``T_n = grad^n G(r)`` of the streamfunction Green's function.  For any
radially symmetric ``G`` these have the classic decomposition

    T1_i    = D1 r_i
    T2_ij   = D2 r_i r_j + D1 delta_ij
    T3_ijk  = D3 r_i r_j r_k + D2 (delta_ij r_k + delta_ik r_j + delta_jk r_i)
    T4_ijkl = D4 rrrr + D3 (six delta-rr terms) + D2 (three delta-delta terms)

with the radial chain ``D_{n+1}(r) = D_n'(r) / r`` and ``D1 = G'(r)/r``.

For the algebraic kernel family (paper's choice; Speck's thesis [23]) all
``D_n`` are *exact rational functions* of ``t = (r/sigma)^2``:

    D1(r) = -(1/4pi) q(rho)/r^3 = -(1/4pi sigma^3) qq(t)

and ``qq(t) = P(t) (t+1)^{-k}`` is closed under ``d/dt``, giving

    D_{n+1} = (2 / sigma^2) dD_n/dt.

So the expansion is the *regularised* kernel's own expansion — valid at any
distance, which matters here because the paper's core size
``sigma ~= 18.53 h`` is large.  For the singular kernel the same formulas
apply with ``qq(t) = t^{-3/2}``, recovering the classical ``1/r`` tensors.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Tuple

import numpy as np

from repro.vortex.kernels import (
    AlgebraicKernel,
    SingularKernel,
    SmoothingKernel,
)


def _int_power(base: np.ndarray, n: int) -> np.ndarray:
    """``base ** n`` for integer ``n >= 1`` by squaring (no float powers)."""
    acc = None
    sq = base
    while n:
        if n & 1:
            acc = sq.copy() if acc is None else acc * sq
        n >>= 1
        if n:
            sq = sq * sq
    return acc

__all__ = [
    "RationalProfile",
    "radial_chain",
    "potential_profile",
    "supports_multipoles",
]


@dataclass(frozen=True)
class RationalProfile:
    """A function ``c * P(t) * (t+1)^(-k)`` with polynomial ``P``.

    ``coeffs`` are low-order-first; ``k`` may be half-integer (stored as a
    :class:`~fractions.Fraction`).  Closed under differentiation in ``t``.
    """

    coeffs: Tuple[float, ...]
    k: Fraction

    def diff(self) -> "RationalProfile":
        """d/dt of the profile: ``[P'(t)(t+1) - k P(t)] (t+1)^(-k-1)``."""
        p = self.coeffs
        dp = tuple((i + 1) * p[i + 1] for i in range(len(p) - 1)) or (0.0,)
        # P'(t)*(t+1)
        a = tuple(dp) + (0.0,)
        b = (0.0,) + tuple(dp)
        num = [
            (a[i] if i < len(a) else 0.0) + (b[i] if i < len(b) else 0.0)
            for i in range(max(len(a), len(b)))
        ]
        # minus k*P
        kf = float(self.k)
        for i in range(len(p)):
            if i >= len(num):
                num.append(0.0)
            num[i] -= kf * p[i]
        # trim trailing zeros
        while len(num) > 1 and num[-1] == 0.0:
            num.pop()
        return RationalProfile(coeffs=tuple(num), k=self.k + 1)

    def __call__(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        acc = np.full_like(t, self.coeffs[-1])
        for c in self.coeffs[-2::-1]:
            acc = acc * t + c
        return acc * (t + 1.0) ** (-float(self.k))


@dataclass(frozen=True)
class _PowerProfile:
    """``t^(-p)`` (used for the singular kernel), closed under d/dt."""

    scale: float
    p: Fraction

    def diff(self) -> "_PowerProfile":
        return _PowerProfile(scale=-float(self.p) * self.scale, p=self.p + 1)

    def __call__(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return self.scale * t ** (-float(self.p))


def supports_multipoles(kernel: SmoothingKernel) -> bool:
    """Whether exact multipole radial chains exist for this kernel."""
    return isinstance(kernel, (AlgebraicKernel, SingularKernel))


def radial_chain(
    kernel: SmoothingKernel,
    r2: np.ndarray,
    sigma: float,
    max_order: int,
) -> Tuple[np.ndarray, ...]:
    """Evaluate ``(D1, ..., D_{max_order})`` at squared distances ``r2``.

    ``max_order`` up to 4 is needed for quadrupole velocity gradients.
    The ``1/4pi`` prefactor of the Green's function is *included*.

    Raises ``NotImplementedError`` for kernels without exact chains (use
    the direct evaluator for those).
    """
    if not 1 <= max_order <= 6:
        raise ValueError(f"max_order must be in 1..6, got {max_order}")
    inv_four_pi = 1.0 / (4.0 * np.pi)
    r2 = np.asarray(r2, dtype=np.float64)

    if isinstance(kernel, AlgebraicKernel):
        t = r2 / (sigma * sigma)
        # qq(t) = P(t) (t+1)^{-(D-2)/2};  D1 = -(1/4pi sigma^3) qq(t)
        profile = RationalProfile(
            coeffs=tuple(kernel._P), k=Fraction(kernel._D - 2, 2)
        )
        # Every chain member shares the denominator family (t+1)^{-(k0+i)}
        # with k0 = (D-2)/2, so one inverse(-sqrt) power chain serves the
        # whole tuple and only the numerators need Horner passes — no
        # float-exponent powers on the hot path.
        inv2 = 1.0 / (t + 1.0)
        if (kernel._D - 2) % 2:
            den = _int_power(np.sqrt(inv2), kernel._D - 2)
        else:
            den = _int_power(inv2, (kernel._D - 2) // 2)
        out = []
        scale = -inv_four_pi / sigma**3
        for i in range(max_order):
            coeffs = profile.coeffs
            num = np.full_like(t, coeffs[-1])
            for c in coeffs[-2::-1]:
                num *= t
                num += c
            num *= den
            num *= scale
            out.append(num)
            if i + 1 < max_order:
                profile = profile.diff()
                scale *= 2.0 / sigma**2
                den = den * inv2
        return tuple(out)

    if isinstance(kernel, SingularKernel):
        eps2 = kernel.softening**2
        s = r2 + eps2
        # D1 = -(1/4pi) s^{-3/2}; chain via power profile in s
        profile = _PowerProfile(scale=-inv_four_pi, p=Fraction(3, 2))
        out = []
        for _ in range(max_order):
            out.append(profile(s))
            profile = profile.diff()
        # D_{n+1} = dD_n/ds * ds/dr / r = 2 dD_n/ds -> factor handled: the
        # chain D_{n+1} = D_n'/r with D_n(r)=g(s), s=r^2+eps^2 gives
        # D_{n+1} = 2 g'(s); _PowerProfile.diff is d/ds, so multiply 2^n.
        return tuple(out[i] * (2.0**i) for i in range(max_order))

    raise NotImplementedError(
        f"kernel {kernel.name!r} has no exact multipole radial chain; "
        "use the direct evaluator or an algebraic kernel"
    )


def _greens_numerator(p_coeffs: Tuple[float, ...], d_exp: int) -> Tuple[float, ...]:
    """Solve ``2 B'(t)(t+1) - (D-4) B(t) = -P(t)`` for polynomial ``B``.

    The streamfunction Green's function of an algebraic kernel with
    ``q = rho^3 P(t)(t+1)^{-(D-2)/2}`` is ``G = B(t)(t+1)^{-(D-4)/2}/(4 pi
    sigma)`` (obtained from ``G'(r) = -q/(4 pi r^2)``); matching
    coefficients gives the recurrence ``b_j (2j - kappa) = -p_j -
    2(j+1) b_{j+1}`` with ``kappa = D - 4`` odd, solved top-down.
    """
    kappa = d_exp - 4
    deg = len(p_coeffs) - 1
    b = [0.0] * (deg + 1)
    for j in range(deg, -1, -1):
        upper = 2.0 * (j + 1) * b[j + 1] if j + 1 <= deg else 0.0
        b[j] = (-p_coeffs[j] - upper) / (2.0 * j - kappa)
    return tuple(b)


def potential_profile(
    kernel: SmoothingKernel, r2: np.ndarray, sigma: float
) -> np.ndarray:
    """The Green's function ``D0 = G(r)`` itself (for potentials).

    Includes the ``1/4pi`` prefactor; ``G -> 1/(4 pi r)`` far away.
    """
    inv_four_pi = 1.0 / (4.0 * np.pi)
    r2 = np.asarray(r2, dtype=np.float64)
    if isinstance(kernel, AlgebraicKernel):
        t = r2 / (sigma * sigma)
        profile = RationalProfile(
            coeffs=_greens_numerator(tuple(kernel._P), kernel._D),
            k=Fraction(kernel._D - 4, 2),
        )
        return inv_four_pi / sigma * profile(t)
    if isinstance(kernel, SingularKernel):
        s = r2 + kernel.softening**2
        return inv_four_pi / np.sqrt(s)
    raise NotImplementedError(
        f"kernel {kernel.name!r} has no closed-form potential profile"
    )
