"""Space-filling curve keys for the hashed oct-tree (Warren & Salmon 1993).

Particles are quantised onto a ``2^depth`` grid inside a cubic bounding box
and assigned 63-bit keys, either

* **Morton** (Z-order): bit interleaving of the three coordinates — cheap,
  the classic PEPC choice; or
* **Hilbert**: Skilling's transpose algorithm — better locality (fewer
  partition-boundary crossings), used by the SFC-quality ablation.

Key layout follows PEPC: a *placeholder bit* is prepended above the
``3 * depth`` coordinate bits, so keys of different tree levels are
distinguishable and the root has key 1.  The prefix of a key at level
``l`` is obtained by shifting off ``3 * (depth - l)`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import check_array

__all__ = [
    "MAX_DEPTH",
    "BoundingCube",
    "morton_encode",
    "morton_decode",
    "hilbert_encode",
    "quantize",
    "cell_of_key",
    "key_at_level",
    "child_index",
]

#: 21 levels x 3 dimensions = 63 bits + 1 placeholder bit fits in uint64
MAX_DEPTH = 21


@dataclass(frozen=True)
class BoundingCube:
    """Cubic axis-aligned box enclosing all particles.

    ``corner`` is the low corner; ``size`` the edge length.  A small pad
    keeps boundary particles strictly inside so quantisation stays within
    ``[0, 2^depth)``.
    """

    corner: np.ndarray
    size: float

    @staticmethod
    def of_points(points: np.ndarray, pad: float = 1e-9) -> "BoundingCube":
        points = check_array("points", points, shape=(None, 3), dtype=np.float64)
        if points.shape[0] == 0:
            return BoundingCube(corner=np.zeros(3), size=1.0)
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        size = float(np.max(hi - lo))
        size = (size if size > 0 else 1.0) * (1.0 + 2.0 * pad)
        center = 0.5 * (lo + hi)
        return BoundingCube(corner=center - 0.5 * size, size=size)

    def center(self) -> np.ndarray:
        return self.corner + 0.5 * self.size


def quantize(
    points: np.ndarray, cube: BoundingCube, depth: int = MAX_DEPTH
) -> np.ndarray:
    """Map points to integer grid coords in ``[0, 2^depth)``, shape (N, 3)."""
    if not 1 <= depth <= MAX_DEPTH:
        raise ValueError(f"depth must be in 1..{MAX_DEPTH}, got {depth}")
    points = check_array("points", points, shape=(None, 3), dtype=np.float64)
    scale = (1 << depth) / cube.size
    ijk = ((points - cube.corner) * scale).astype(np.int64)
    return np.clip(ijk, 0, (1 << depth) - 1).astype(np.uint64)


def _spread_bits(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``x`` so bit i lands at position 3*i."""
    x = x.astype(np.uint64)
    x &= np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact_bits(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits`."""
    x = x.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def morton_encode(ijk: np.ndarray, depth: int = MAX_DEPTH) -> np.ndarray:
    """Morton keys with placeholder bit, from integer coords (N, 3)."""
    ijk = np.asarray(ijk, dtype=np.uint64)
    key = (
        _spread_bits(ijk[:, 0])
        | (_spread_bits(ijk[:, 1]) << np.uint64(1))
        | (_spread_bits(ijk[:, 2]) << np.uint64(2))
    )
    placeholder = np.uint64(1) << np.uint64(3 * depth)
    return key | placeholder


def morton_decode(keys: np.ndarray, depth: int = MAX_DEPTH) -> np.ndarray:
    """Integer coordinates (N, 3) from Morton keys (placeholder stripped)."""
    keys = np.asarray(keys, dtype=np.uint64)
    mask = (np.uint64(1) << np.uint64(3 * depth)) - np.uint64(1)
    k = keys & mask
    return np.column_stack(
        [
            _compact_bits(k),
            _compact_bits(k >> np.uint64(1)),
            _compact_bits(k >> np.uint64(2)),
        ]
    )


def hilbert_encode(ijk: np.ndarray, depth: int = MAX_DEPTH) -> np.ndarray:
    """Hilbert keys (Skilling's transpose algorithm), with placeholder bit.

    Vectorised over particles; loops only over the ``depth`` bit planes.
    """
    x = np.asarray(ijk, dtype=np.uint64).T.copy()  # (3, N)
    n_dims = 3
    m = np.uint64(1) << np.uint64(depth - 1)
    # inverse undo excess work
    q = m
    while q > 1:
        p = q - np.uint64(1)
        for i in range(n_dims):
            swap = (x[i] & q).astype(bool)
            x[0] = np.where(swap, x[0] ^ p, x[0])
            # exchange low bits between x[0] and x[i] where not swap
            t = np.where(~swap, (x[0] ^ x[i]) & p, np.uint64(0))
            x[0] ^= t
            x[i] ^= t
        q >>= np.uint64(1)
    # Gray encode
    for i in range(1, n_dims):
        x[i] ^= x[i - 1]
    t = np.zeros_like(x[0])
    q = m
    while q > 1:
        t = np.where((x[n_dims - 1] & q).astype(bool), t ^ (q - np.uint64(1)), t)
        q >>= np.uint64(1)
    for i in range(n_dims):
        x[i] ^= t
    # interleave transposed bits into a single key (MSB-first per level)
    key = np.zeros(x.shape[1], dtype=np.uint64)
    for bit in range(depth - 1, -1, -1):
        for dim in range(n_dims):
            key = (key << np.uint64(1)) | ((x[dim] >> np.uint64(bit)) & np.uint64(1))
    placeholder = np.uint64(1) << np.uint64(3 * depth)
    return key | placeholder


def key_at_level(keys: np.ndarray, level: int, depth: int = MAX_DEPTH) -> np.ndarray:
    """Truncate full-depth keys to their level-``level`` ancestor keys."""
    if not 0 <= level <= depth:
        raise ValueError(f"level must be in 0..{depth}, got {level}")
    shift = np.uint64(3 * (depth - level))
    return np.asarray(keys, dtype=np.uint64) >> shift


def child_index(keys: np.ndarray, level: int, depth: int = MAX_DEPTH) -> np.ndarray:
    """Octant (0..7) a full-depth key occupies within its level-``level-1``
    parent."""
    if not 1 <= level <= depth:
        raise ValueError(f"level must be in 1..{depth}, got {level}")
    shift = np.uint64(3 * (depth - level))
    return (np.asarray(keys, dtype=np.uint64) >> shift) & np.uint64(7)


def cell_of_key(
    key_at_lvl: np.ndarray, level: int, cube: BoundingCube, depth: int = MAX_DEPTH
) -> Tuple[np.ndarray, float]:
    """Geometric (center, edge length) of level-``level`` Morton cells.

    Only valid for Morton keys (Hilbert keys do not nest geometrically by
    simple truncation).
    """
    key = np.asarray(key_at_lvl, dtype=np.uint64)
    placeholder = np.uint64(1) << np.uint64(3 * level)
    stripped = key & (placeholder - np.uint64(1))
    ijk = np.column_stack(
        [
            _compact_bits(stripped),
            _compact_bits(stripped >> np.uint64(1)),
            _compact_bits(stripped >> np.uint64(2)),
        ]
    ).astype(np.float64)
    edge = cube.size / (1 << level)
    centers = cube.corner[None, :] + (ijk + 0.5) * edge
    return centers, edge
