"""repro — a massively space-time parallel N-body solver.

Reproduction of Speck, Ruprecht, Krause, Emmett, Minion, Winkel & Gibbon,
"A massively space-time parallel N-body solver" (SC 2012): the PFASST
parallel-in-time integrator coupled to a Barnes-Hut tree code for a 3D
vortex particle method, with particle-based spatial coarsening via the
multipole acceptance criterion.

Quickstart::

    from repro import (SpaceTimeSolver, SolverConfig, SpaceConfig,
                       TimeConfig, spherical_vortex_sheet, SheetConfig)

    sheet = SheetConfig(n=2000)
    particles = spherical_vortex_sheet(sheet)
    config = SolverConfig(
        space=SpaceConfig(evaluator="tree", theta=0.3, theta_coarse=0.6),
        time=TimeConfig(method="pfasst", t_end=2.0, dt=0.5,
                        iterations=2, coarse_sweeps=2, p_time=4),
    )
    result = SpaceTimeSolver(particles, sheet.sigma, config).run()

Packages
--------
``repro.vortex``    vortex particle method (kernels, RHS, initial data)
``repro.tree``      Barnes-Hut tree code ("PEPC")
``repro.backends``  pluggable kernel backends (numpy / threaded / cupy)
``repro.nbody``     direct reference solvers (Coulomb / gravity)
``repro.sdc``       spectral deferred corrections
``repro.pfasst``    PFASST and parareal parallel-in-time methods
``repro.parallel``  deterministic simulated MPI
``repro.perfmodel`` calibrated machine/scaling models
``repro.integrators`` classical Runge-Kutta baselines
"""

from repro.core import (
    SolverConfig,
    SpaceConfig,
    TimeConfig,
    SpaceTimeSolver,
    RunResult,
)
from repro.vortex import (
    ParticleSystem,
    SheetConfig,
    spherical_vortex_sheet,
    get_kernel,
    DirectEvaluator,
    VortexProblem,
)
from repro.tree import TreeEvaluator, TreeCoulombSolver, build_octree
from repro.sdc import SDCStepper
from repro.pfasst import (
    LevelSpec,
    PfasstConfig,
    run_pfasst,
    parareal_serial,
    run_parareal,
)

__version__ = "1.0.0"

__all__ = [
    "SolverConfig",
    "SpaceConfig",
    "TimeConfig",
    "SpaceTimeSolver",
    "RunResult",
    "ParticleSystem",
    "SheetConfig",
    "spherical_vortex_sheet",
    "get_kernel",
    "DirectEvaluator",
    "VortexProblem",
    "TreeEvaluator",
    "TreeCoulombSolver",
    "build_octree",
    "SDCStepper",
    "LevelSpec",
    "PfasstConfig",
    "run_pfasst",
    "parareal_serial",
    "run_parareal",
    "__version__",
]
